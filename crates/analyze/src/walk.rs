//! The command walker: an abstract interpreter over [`Program`] that
//! mirrors the translator's control flow (branch events, joins, loop
//! unrolling, switch desugaring) without building any sum-product
//! expression.
//!
//! Branch-liveness facts are collected as *votes*: a program point inside
//! a loop is visited once per unrolled iteration, and a "dead branch" /
//! "tautological guard" lint is only emitted when every visit agreed.
//! Pruning *guts* a dead branch (empties its body) rather than deleting
//! the arm: the guard expression — and therefore every sibling branch
//! event the translator builds from its negation — survives verbatim, so
//! the translated expression is bit-identical by construction (the
//! translator never evaluates the body of a probability-zero branch, and
//! "dead" is decided on symbolic sets, so the runtime guard probability
//! is exactly zero).

use std::collections::HashMap;

use sppl_core::event::Event;
use sppl_lang::ast::{Command, Expr, Target};
use sppl_lang::diagnostics::{Diagnostic, LintCode, Severity, Span};
use sppl_lang::translate::Value;
use sppl_sets::OutcomeSet;

use crate::env::{ConstVal, Env};
use crate::eval::{case_event, static_case_matches, AbsValue};
use crate::sat;

/// How many loop iterations the analyzer will unroll in total before
/// degrading to a single havoc pass over the body.
const UNROLL_FUEL: i128 = 10_000;

/// What a vote at a span is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum VoteKind {
    /// An `if`/`elif` arm is dead (keyed by the guard's span + index).
    ArmDead,
    /// An explicit `else` body is dead (keyed by the `if` span).
    ElseDead,
    /// A `switch` case is dead (keyed by the values expression + index).
    CaseDead,
    /// A guard is statically always true (`W103`).
    Taut,
    /// A `condition(...)` is statically always true (`W105`).
    Trivial,
}

pub(crate) type VoteKey = (Span, usize, VoteKind);

/// Aggregated verdict for one program point across all visits.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Fate {
    pub visits: u32,
    pub yes: u32,
    /// Whether this vote kind supports pruning at all: dead `if` arms and
    /// `else` bodies can be gutted; a `switch` case's body is shared by
    /// every case, so it never can.
    pub removable: bool,
}

struct BranchPlan<'a> {
    /// Resolved branch event; `None` when unknown (always may-live).
    effective: Option<Event>,
    body: &'a [Command],
    binding: Option<(&'a str, ConstVal)>,
    vote: Option<(VoteKey, bool)>,
}

pub(crate) struct Walker {
    pub(crate) env: Env,
    pub(crate) diags: Vec<Diagnostic>,
    /// Suppress diagnostics (havoc passes over loop bodies whose bounds
    /// are unknown); votes are still recorded.
    pub(crate) quiet: bool,
    /// Depth of possibly-dead branch context. The translator never
    /// evaluates the body of a probability-zero branch, so error-level
    /// findings inside a possibly-dead branch degrade to warnings.
    branch_depth: u32,
    /// Constant definitions for the unused-variable lint:
    /// name → (first definition, ever read).
    const_defs: HashMap<String, (Span, bool)>,
    pub(crate) votes: HashMap<VoteKey, Fate>,
    fuel: i128,
}

impl Walker {
    pub(crate) fn new() -> Walker {
        Walker {
            env: Env::new(),
            diags: Vec::new(),
            quiet: false,
            branch_depth: 0,
            const_defs: HashMap::new(),
            votes: HashMap::new(),
            fuel: UNROLL_FUEL,
        }
    }

    /// Emits a diagnostic, applying the quiet and branch-context
    /// policies.
    pub(crate) fn diag<S: Into<String>>(&mut self, code: LintCode, span: Span, message: S) {
        if self.quiet {
            return;
        }
        let mut d = Diagnostic::new(code, span, message.into());
        if d.severity == Severity::Error && self.branch_depth > 0 {
            // The surrounding branch may have probability zero at
            // runtime, in which case the translator never reaches this
            // point: report, but do not fail the compile.
            d.severity = Severity::Warning;
        }
        self.diags.push(d);
    }

    pub(crate) fn mark_used(&mut self, name: &str) {
        if let Some(entry) = self.const_defs.get_mut(name) {
            entry.1 = true;
        }
    }

    fn register_def(&mut self, name: &str, span: Span) {
        self.const_defs
            .entry(name.to_string())
            .or_insert((span, false));
    }

    /// Names whose constant definition was never read.
    pub(crate) fn unused_consts(&self) -> Vec<(String, Span)> {
        self.const_defs
            .iter()
            .filter(|(_, (_, used))| !used)
            .map(|(name, (span, _))| (name.clone(), *span))
            .collect()
    }

    fn vote(&mut self, key: VoteKey, yes: bool, removable: bool) {
        let fate = self.votes.entry(key).or_insert(Fate {
            visits: 0,
            yes: 0,
            removable: true,
        });
        fate.visits += 1;
        if yes {
            fate.yes += 1;
        }
        fate.removable &= removable;
    }

    pub(crate) fn exec_all(&mut self, commands: &[Command]) {
        for c in commands {
            self.exec(c);
        }
    }

    fn exec(&mut self, cmd: &Command) {
        match cmd {
            Command::Skip => {}
            Command::Assign { target, expr, span } => self.exec_assign(target, expr, *span),
            Command::Sample { target, expr, span } => self.exec_sample(target, expr, *span),
            Command::Condition { expr, span } => self.exec_condition(expr, *span),
            Command::If {
                arms,
                otherwise,
                span,
            } => self.exec_if(arms, otherwise.as_deref(), *span),
            Command::For {
                var,
                lo,
                hi,
                body,
                span: _,
            } => self.exec_for(var, lo, hi, body),
            Command::Switch {
                subject,
                binder,
                values,
                body,
                span: _,
            } => self.exec_switch(subject, binder, values, body),
        }
    }

    fn exec_assign(&mut self, target: &Target, expr: &Expr, span: Span) {
        // Array declaration: `X = array(n)`.
        if let Expr::Call { func, args, .. } = expr {
            if func == "array" {
                let Target::Var(name) = target else {
                    return; // the translator rejects this form
                };
                if args.len() != 1 {
                    return;
                }
                let size = match self.eval_integer(&args[0]) {
                    Some(n) if n >= 0 => Some(n as usize),
                    Some(_) => return, // negative size: translator error
                    None => None,
                };
                if size.is_none() {
                    self.env.havoc_arrays.insert(name.clone());
                }
                self.env.arrays.insert(name.clone(), size);
                return;
            }
        }
        let Some(name) = self.resolve_target(target, span) else {
            return;
        };
        match self.eval(expr) {
            AbsValue::Const(v) => {
                if self.env.rvs.contains(&name) {
                    self.diag(
                        LintCode::Redefinition,
                        span,
                        format!("cannot rebind random variable {name} as a constant (R1)"),
                    );
                    return;
                }
                self.register_def(&name, span);
                self.env.consts.insert(name, ConstVal::Known(v));
            }
            AbsValue::Top => {
                if self.env.rvs.contains(&name) {
                    self.diag(
                        LintCode::Redefinition,
                        span,
                        format!("variable {name} is already defined (R1)"),
                    );
                    return;
                }
                self.register_def(&name, span);
                self.env.consts.insert(name, ConstVal::Unknown);
            }
            AbsValue::Rv(t) => {
                if self.check_fresh(&name, span) {
                    return;
                }
                let resolved = self.env.resolve_transform(&t);
                match resolved.the_var() {
                    Some(base) => {
                        let base = base.name().to_string();
                        self.env.define_derived(&name, &base, resolved);
                    }
                    // R3 violation (multi-variable transform): the
                    // translator reports it; stay permissive here.
                    None => self.env.define_base(&name, OutcomeSet::all()),
                }
            }
            // `X = normal(0,1)` / `X = (Y > 0)`: translator errors with
            // its own message; define the name to avoid cascading E001s.
            AbsValue::Dist(support) => self.env.define_base(&name, support),
            AbsValue::Event(_) => self.env.define_base(&name, OutcomeSet::all()),
        }
    }

    fn exec_sample(&mut self, target: &Target, expr: &Expr, span: Span) {
        let Some(name) = self.resolve_target(target, span) else {
            // Element of a havoc array (or unresolvable index): walk the
            // RHS for its own diagnostics, then give up on the binding.
            self.eval(expr);
            return;
        };
        if self.check_fresh(&name, span) {
            return;
        }
        match self.eval(expr) {
            AbsValue::Dist(support) => self.env.define_base(&name, support),
            // Not a distribution (translator error) or unknown: keep the
            // name defined so later uses do not cascade.
            _ => self.env.define_base(&name, OutcomeSet::all()),
        }
    }

    /// The translator's `check_fresh` as a lint; `true` means the name
    /// is definitely taken (diagnostic emitted, skip the definition).
    fn check_fresh(&mut self, name: &str, span: Span) -> bool {
        if self.env.rvs.contains(name) {
            self.diag(
                LintCode::Redefinition,
                span,
                format!("variable {name} is already defined (R1)"),
            );
            return true;
        }
        if let Some(ConstVal::Known(_)) = self.env.consts.get(name) {
            self.diag(
                LintCode::Redefinition,
                span,
                format!("variable {name} shadows a constant"),
            );
            return true;
        }
        // `ConstVal::Unknown` may not exist at runtime: stay silent and
        // let the definition proceed (the translator decides).
        false
    }

    fn resolve_target(&mut self, target: &Target, span: Span) -> Option<String> {
        match target {
            Target::Var(name) => Some(name.clone()),
            Target::Indexed(name, idx) => {
                if !self.env.arrays.contains_key(name) {
                    self.diag(
                        LintCode::UseBeforeDefine,
                        span,
                        format!("array {name} is not declared (use {name} = array(n))"),
                    );
                    return None;
                }
                self.element_name(name, idx, span)
            }
        }
    }

    fn exec_condition(&mut self, expr: &Expr, span: Span) {
        let v = self.eval(expr);
        let Some(e) = self.coerce_event(v) else {
            return;
        };
        let resolved = sat::resolve_event(&e, &self.env);
        if !sat::may_sat(&resolved, &self.env) {
            self.diag(
                LintCode::UnsatisfiableCondition,
                span,
                "condition is statically unsatisfiable (the event is disjoint \
                 from the inferred support)",
            );
            // Refining would empty the supports and drown everything
            // after this point in follow-on diagnostics.
            return;
        }
        let trivially_true = !sat::may_sat(&resolved.negate(), &self.env);
        self.vote((span, 0, VoteKind::Trivial), trivially_true, false);
        sat::refine(&mut self.env, &resolved);
    }

    fn exec_if(
        &mut self,
        arms: &[(Expr, Vec<Command>)],
        otherwise: Option<&[Command]>,
        span: Span,
    ) {
        // Evaluate every guard in the pre-branch environment, exactly as
        // the translator does.
        let guards: Vec<Option<Event>> = arms
            .iter()
            .map(|(g, _)| {
                let v = self.eval(g);
                self.coerce_event(v)
                    .map(|e| sat::resolve_event(&e, &self.env))
            })
            .collect();
        let mut plans: Vec<BranchPlan> = Vec::new();
        let mut negations: Vec<Event> = Vec::new();
        for (i, ((gexpr, body), guard)) in arms.iter().zip(&guards).enumerate() {
            let effective = guard.as_ref().map(|g| {
                let mut parts = negations.clone();
                parts.push(g.clone());
                Event::and(parts)
            });
            if let Some(g) = guard {
                let has_later = i + 1 < arms.len() || otherwise.is_some();
                if has_later {
                    let taut = !sat::may_sat(&g.negate(), &self.env);
                    self.vote((gexpr.span(), i, VoteKind::Taut), taut, false);
                }
                negations.push(g.negate());
            }
            plans.push(BranchPlan {
                effective,
                body,
                binding: None,
                vote: Some(((gexpr.span(), i, VoteKind::ArmDead), true)),
            });
        }
        // The implicit else: all known negations. Only an explicit else
        // body gets a vote (there is nothing to lint or prune in an
        // absent one).
        let else_known = guards.iter().all(Option::is_some);
        plans.push(BranchPlan {
            effective: else_known.then(|| Event::and(negations)),
            body: otherwise.unwrap_or(&[]),
            binding: None,
            vote: otherwise.map(|_| ((span, 0, VoteKind::ElseDead), true)),
        });
        self.walk_branches(plans, span);
    }

    fn exec_switch(&mut self, subject: &Expr, binder: &str, values: &Expr, body: &[Command]) {
        let subject_eval = self.eval(subject);
        let vals = match self.eval(values) {
            AbsValue::Const(Value::List(vs)) => Some(vs),
            _ => None,
        };
        match (subject_eval, vals) {
            (AbsValue::Const(v), Some(vals)) => {
                // Static dispatch: only the matching case runs.
                for case in &vals {
                    if static_case_matches(&v, case) {
                        self.env
                            .consts
                            .insert(binder.to_string(), ConstVal::Known(case.clone()));
                        self.exec_all(body);
                        self.env.consts.remove(binder);
                        return;
                    }
                }
                // No match: translator error; nothing runs.
            }
            (AbsValue::Rv(t), Some(vals)) => {
                let resolved = self.env.resolve_transform(&t);
                let mut plans: Vec<BranchPlan> = Vec::new();
                let mut negations: Vec<Event> = Vec::new();
                for (i, case) in vals.iter().enumerate() {
                    let guard = case_event(&resolved, case);
                    if let Some(g) = &guard {
                        negations.push(g.negate());
                    }
                    plans.push(BranchPlan {
                        effective: guard,
                        body,
                        binding: Some((binder, ConstVal::Known(case.clone()))),
                        vote: Some(((values.span(), i, VoteKind::CaseDead), false)),
                    });
                }
                // Implicit empty else catches uncovered support.
                plans.push(BranchPlan {
                    effective: Some(Event::and(negations)),
                    body: &[],
                    binding: None,
                    vote: None,
                });
                self.walk_branches(plans, subject.span());
            }
            // Unknown subject or case list: one havoc pass over the body.
            (AbsValue::Top, _) | (_, None) => self.havoc_block(body, &[binder]),
            // Const/Dist/Event subjects with known values: the
            // translator rejects them; the body never runs.
            _ => {}
        }
    }

    fn exec_for(&mut self, var: &str, lo: &Expr, hi: &Expr, body: &[Command]) {
        let (Some(lo), Some(hi)) = (self.eval_integer(lo), self.eval_integer(hi)) else {
            self.havoc_block(body, &[var]);
            return;
        };
        if hi < lo {
            return; // empty range: translator error, body never runs
        }
        let count = i128::from(hi) - i128::from(lo);
        if count > self.fuel {
            self.havoc_block(body, &[var]);
            return;
        }
        self.fuel -= count;
        let saved = self.env.consts.get(var).cloned();
        for i in lo..hi {
            self.env
                .consts
                .insert(var.to_string(), ConstVal::Known(Value::Num(i as f64)));
            self.exec_all(body);
        }
        match saved {
            Some(v) => self.env.consts.insert(var.to_string(), v),
            None => self.env.consts.remove(var),
        };
    }

    /// Shared machinery for `if`/`elif`/`else` and desugared `switch`:
    /// decide liveness per branch, walk the may-live bodies in refined
    /// child environments, and join the results.
    fn walk_branches(&mut self, plans: Vec<BranchPlan>, span: Span) {
        let parent = self.env.clone();
        let mut survivors: Vec<Env> = Vec::new();
        for plan in plans {
            let live = match &plan.effective {
                Some(e) => sat::may_sat(e, &parent),
                None => true,
            };
            if let Some((key, removable)) = plan.vote {
                self.vote(key, !live, removable);
            }
            if !live {
                continue;
            }
            self.env = parent.clone();
            let definitely_entered = matches!(&plan.effective, Some(e) if event_is_always(e));
            if let Some(e) = &plan.effective {
                sat::refine(&mut self.env, e);
            }
            if let Some((name, value)) = &plan.binding {
                self.env.consts.insert((*name).to_string(), value.clone());
            }
            if !definitely_entered {
                self.branch_depth += 1;
            }
            self.exec_all(plan.body);
            if !definitely_entered {
                self.branch_depth -= 1;
            }
            if let Some((name, _)) = &plan.binding {
                self.env.consts.remove(*name);
            }
            survivors.push(std::mem::take(&mut self.env));
        }
        if survivors.is_empty() {
            self.diag(
                LintCode::AllBranchesDead,
                span,
                "all branches are statically dead (every guard is disjoint \
                 from the inferred support)",
            );
            self.env = parent;
            return;
        }
        self.env = Env::join(&parent, survivors);
    }

    /// Walks a body whose iteration structure is unknown: one quiet pass
    /// for votes and use tracking, then conservative damage to the
    /// environment (constants it wrote become unknown, variables it
    /// defined become maybe-defined, arrays it touched become havoc).
    fn havoc_block(&mut self, body: &[Command], binders: &[&str]) {
        let saved = self.env.clone();
        let was_quiet = self.quiet;
        self.quiet = true;
        for b in binders {
            self.env.consts.insert((*b).to_string(), ConstVal::Unknown);
        }
        self.exec_all(body);
        self.quiet = was_quiet;
        let pass = std::mem::replace(&mut self.env, saved);
        for (name, val) in &pass.consts {
            if binders.contains(&name.as_str()) {
                continue;
            }
            if self.env.consts.get(name) != Some(val) {
                self.env.consts.insert(name.clone(), ConstVal::Unknown);
            }
        }
        for (name, size) in &pass.arrays {
            match self.env.arrays.get(name) {
                Some(existing) if existing == size => {}
                Some(_) => {
                    self.env.arrays.insert(name.clone(), None);
                    self.env.havoc_arrays.insert(name.clone());
                }
                None => {
                    self.env.arrays.insert(name.clone(), *size);
                    self.env.havoc_arrays.insert(name.clone());
                }
            }
        }
        self.env.havoc_arrays.extend(pass.havoc_arrays);
        for name in pass.rvs {
            if !self.env.rvs.contains(&name) {
                self.env.maybe_rvs.insert(name);
            }
        }
        self.env.maybe_rvs.extend(pass.maybe_rvs);
        // Supports of pre-existing variables keep their pre-loop values:
        // conditioning inside the body only narrows them, so the saved
        // sets remain over-approximations.
    }
}

fn event_is_always(e: &Event) -> bool {
    match e {
        Event::In(..) => false,
        Event::And(children) => children.iter().all(event_is_always),
        Event::Or(children) => children.iter().any(event_is_always),
    }
}

/// Guts (empties the body of) every arm and `else` block that all visits
/// proved dead; recurses into live bodies. The guards themselves are
/// kept, so the translator builds the exact same branch events — a
/// gutted branch has guard probability exactly zero at runtime and is
/// skipped before its (now empty) body would run, making the pruned
/// translation bit-identical to the original.
pub(crate) fn prune_commands(
    cmds: &[Command],
    prunable: &dyn Fn(&VoteKey) -> bool,
) -> Vec<Command> {
    cmds.iter()
        .map(|c| match c {
            Command::If {
                arms,
                otherwise,
                span,
            } => {
                let new_arms: Vec<(Expr, Vec<Command>)> = arms
                    .iter()
                    .enumerate()
                    .map(|(i, (g, b))| {
                        let body = if prunable(&(g.span(), i, VoteKind::ArmDead)) {
                            Vec::new()
                        } else {
                            prune_commands(b, prunable)
                        };
                        (g.clone(), body)
                    })
                    .collect();
                let new_else = otherwise.as_ref().map(|b| {
                    if prunable(&(*span, 0, VoteKind::ElseDead)) {
                        Vec::new()
                    } else {
                        prune_commands(b, prunable)
                    }
                });
                Command::If {
                    arms: new_arms,
                    otherwise: new_else,
                    span: *span,
                }
            }
            Command::For {
                var,
                lo,
                hi,
                body,
                span,
            } => Command::For {
                var: var.clone(),
                lo: lo.clone(),
                hi: hi.clone(),
                body: prune_commands(body, prunable),
                span: *span,
            },
            Command::Switch {
                subject,
                binder,
                values,
                body,
                span,
            } => Command::Switch {
                subject: subject.clone(),
                binder: binder.clone(),
                values: values.clone(),
                body: prune_commands(body, prunable),
                span: *span,
            },
            other => other.clone(),
        })
        .collect()
}
