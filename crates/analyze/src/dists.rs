//! Abstract interpretation of distribution constructors: validates
//! parameters exactly like the translator (same families, same aliases,
//! same range checks) and infers the sampled variable's support.
//!
//! When a parameter's value is unknown (lost at a join) the family's
//! *maximal* support is used, keeping the per-variable supports
//! over-approximate.

use std::collections::HashMap;

use sppl_dists::{Cdf, DistInt, DistReal, DistStr, Distribution};
use sppl_lang::translate::Value;
use sppl_sets::{Interval, OutcomeSet};

/// A numeric parameter: known, or lost at a join.
pub(crate) type Param = Option<f64>;

/// Outcome of abstractly evaluating `func(args…)` as a distribution.
pub(crate) enum DistVerdict {
    /// A valid distribution with this (over-approximate) support.
    Ok(OutcomeSet),
    /// Invalid parameters (`E006`): message + fallback support.
    Invalid(String, OutcomeSet),
    /// `func` names no known distribution (`E001` at the caller).
    UnknownName,
}

fn nonneg() -> OutcomeSet {
    OutcomeSet::from(Interval::above(0.0, true).expect("0 is a valid bound"))
}

/// The largest support any instance of the family can have — the sound
/// fallback when parameter values are unknown.
fn family_max_support(func: &str) -> Option<OutcomeSet> {
    Some(match func {
        "normal" | "gaussian" | "uniform" | "cauchy" | "laplace" | "logistic" | "student_t"
        | "studentt" | "randint" | "discrete_uniform" | "atomic" | "atom" | "discrete" => {
            OutcomeSet::all_reals()
        }
        "exponential" | "gamma" | "beta" | "binomial" | "poisson" | "geometric" => nonneg(),
        "bernoulli" => OutcomeSet::real_points([0.0, 1.0]),
        "choice" => OutcomeSet::from_strings(sppl_sets::StringSet::all()),
        _ => return None,
    })
}

/// Mirrors the translator's positional/keyword parameter lookup.
fn get(named: &HashMap<&str, Param>, pos: &[Param], names: &[&str], i: usize) -> Option<Param> {
    names
        .iter()
        .find_map(|n| named.get(n).copied())
        .or_else(|| pos.get(i).copied())
}

/// Abstractly evaluates a distribution call. `pos`/`named` are numeric
/// parameters (`None` when the value is unknown); `dict` is the
/// `{outcome: weight}` argument of `choice`/`discrete` (`None` when
/// absent, weights `None` when unknown).
pub(crate) fn infer(
    func: &str,
    pos: &[Param],
    named: &HashMap<&str, Param>,
    dict: Option<&[(Value, Param)]>,
) -> DistVerdict {
    let Some(fallback) = family_max_support(func) else {
        return DistVerdict::UnknownName;
    };
    let invalid = |msg: String| DistVerdict::Invalid(msg, fallback.clone());

    // Finiteness first, mirroring the translator's central check.
    for p in pos.iter().chain(named.values()).copied().flatten() {
        if !p.is_finite() {
            return invalid(format!("distribution parameters must be finite, got {p}"));
        }
    }
    if let Some(pairs) = dict {
        for (k, w) in pairs {
            if let Some(w) = w {
                if !w.is_finite() {
                    return invalid(format!("distribution weights must be finite, got {w}"));
                }
            }
            if let Value::Num(n) = k {
                if !n.is_finite() {
                    return invalid(format!("distribution outcomes must be finite, got {n}"));
                }
            }
        }
    }

    // Per-family checks. A `None` anywhere degrades to the family's
    // maximal support without a diagnostic.
    macro_rules! param {
        ($names:expr, $i:expr) => {
            match get(named, pos, $names, $i) {
                Some(Some(v)) => v,
                Some(None) => return DistVerdict::Ok(fallback),
                None => {
                    return invalid(format!("{func} requires a {} parameter", $names[0]));
                }
            }
        };
    }
    macro_rules! opt_param {
        ($names:expr, $i:expr, $default:expr) => {
            match get(named, pos, $names, $i) {
                Some(Some(v)) => v,
                Some(None) => return DistVerdict::Ok(fallback),
                None => $default,
            }
        };
    }

    let dist = match func {
        "normal" | "gaussian" => {
            let _mu = param!(&["mu", "loc", "mean"], 0);
            let sigma = param!(&["sigma", "scale", "std"], 1);
            if sigma <= 0.0 {
                return invalid(format!("normal scale must be positive, got {sigma}"));
            }
            Distribution::Real(
                DistReal::new(Cdf::normal(_mu, sigma), Interval::all()).expect("positive mass"),
            )
        }
        "uniform" => {
            let a = param!(&["a", "lo", "loc"], 0);
            let b = param!(&["b", "hi"], 1);
            if b <= a {
                return invalid(format!("uniform requires lo < hi, got [{a}, {b}]"));
            }
            Distribution::Real(
                DistReal::new(Cdf::uniform(a, b), Interval::closed(a, b)).expect("positive mass"),
            )
        }
        "exponential" => {
            let rate = param!(&["rate", "lam", "lambda_"], 0);
            if rate <= 0.0 {
                return invalid("exponential rate must be positive".into());
            }
            real(Cdf::exponential(rate))
        }
        "gamma" => {
            let shape = param!(&["shape", "a", "k"], 0);
            let scale = opt_param!(&["scale", "theta"], 1, 1.0);
            if shape <= 0.0 || scale <= 0.0 {
                return invalid("gamma parameters must be positive".into());
            }
            real(Cdf::gamma(shape, scale))
        }
        "beta" => {
            let a = param!(&["a", "alpha"], 0);
            let b = param!(&["b", "beta"], 1);
            let scale = opt_param!(&["scale"], 2, 1.0);
            if a <= 0.0 || b <= 0.0 || scale <= 0.0 {
                return invalid("beta parameters must be positive".into());
            }
            real(Cdf::beta_scaled(a, b, scale))
        }
        "cauchy" | "laplace" | "logistic" => {
            let loc = param!(&["loc"], 0);
            let scale = param!(&["scale"], 1);
            if scale <= 0.0 {
                return invalid(format!("{func} scale must be positive"));
            }
            real(match func {
                "cauchy" => Cdf::cauchy(loc, scale),
                "laplace" => Cdf::laplace(loc, scale),
                _ => Cdf::logistic(loc, scale),
            })
        }
        "student_t" | "studentt" => {
            let df = param!(&["df"], 0);
            if df <= 0.0 {
                return invalid("student_t df must be positive".into());
            }
            real(Cdf::student_t(df))
        }
        "bernoulli" => {
            let p = param!(&["p"], 0);
            if !(0.0..=1.0).contains(&p) {
                return invalid(format!("bernoulli p must be in [0,1], got {p}"));
            }
            match int(Cdf::binomial(1, p)) {
                Some(d) => d,
                None => return invalid("integer distribution has empty support".into()),
            }
        }
        "binomial" => {
            let n = param!(&["n"], 0);
            let p = param!(&["p"], 1);
            if n < 0.0 || n.fract() != 0.0 {
                return invalid("binomial n must be a nonnegative integer".into());
            }
            if !(0.0..=1.0).contains(&p) {
                return invalid("binomial p must be in [0,1]".into());
            }
            match int(Cdf::binomial(n as u64, p)) {
                Some(d) => d,
                None => return invalid("integer distribution has empty support".into()),
            }
        }
        "poisson" => {
            let mu = param!(&["mu", "lam", "rate", "mean"], 0);
            if mu <= 0.0 {
                return invalid(format!("poisson mean must be positive, got {mu}"));
            }
            match int(Cdf::poisson(mu)) {
                Some(d) => d,
                None => return invalid("integer distribution has empty support".into()),
            }
        }
        "geometric" => {
            let p = param!(&["p"], 0);
            if p <= 0.0 || p > 1.0 {
                return invalid("geometric p must be in (0,1]".into());
            }
            match int(Cdf::geometric(p)) {
                Some(d) => d,
                None => return invalid("integer distribution has empty support".into()),
            }
        }
        "randint" | "discrete_uniform" => {
            let lo = param!(&["lo"], 0);
            let hi = param!(&["hi"], 1);
            if lo.fract() != 0.0 || hi.fract() != 0.0 || hi < lo {
                return invalid("randint requires integer lo <= hi".into());
            }
            match int(Cdf::discrete_uniform(lo as i64, hi as i64)) {
                Some(d) => d,
                None => return invalid("integer distribution has empty support".into()),
            }
        }
        "atomic" | "atom" => {
            let loc = param!(&["loc"], 0);
            Distribution::Atomic { loc }
        }
        "choice" => {
            let Some(pairs) = dict else {
                return invalid("choice requires a dict {value: weight}".into());
            };
            let mut items = Vec::new();
            for (k, w) in pairs {
                let Some(w) = w else {
                    return DistVerdict::Ok(fallback);
                };
                match k {
                    Value::Str(s) => items.push((s.clone(), *w)),
                    other => {
                        return invalid(format!("choice keys must be strings, got {:?}", other))
                    }
                }
            }
            match DistStr::new(items) {
                Some(d) => Distribution::Str(d),
                None => return invalid("choice weights must include a positive entry".into()),
            }
        }
        "discrete" => {
            let Some(pairs) = dict else {
                return invalid("discrete requires a dict {value: weight}".into());
            };
            let mut locs = Vec::new();
            let mut total = 0.0;
            for (k, w) in pairs {
                let Some(w) = w else {
                    return DistVerdict::Ok(fallback);
                };
                match k {
                    Value::Num(n) => {
                        if *w > 0.0 {
                            locs.push(*n);
                            total += *w;
                        }
                    }
                    other => {
                        return invalid(format!("discrete keys must be numbers, got {:?}", other))
                    }
                }
            }
            if total <= 0.0 {
                return invalid("discrete weights must include a positive entry".into());
            }
            return DistVerdict::Ok(OutcomeSet::real_points(locs));
        }
        _ => return DistVerdict::UnknownName,
    };
    DistVerdict::Ok(dist.support_set())
}

fn real(cdf: Cdf) -> Distribution {
    let (lo, hi) = cdf.support();
    let iv = Interval::new(lo, lo.is_finite(), hi, hi.is_finite()).unwrap_or_else(Interval::all);
    Distribution::Real(DistReal::new(cdf, iv).expect("validated parameters have positive mass"))
}

fn int(cdf: Cdf) -> Option<Distribution> {
    let (lo, hi) = cdf.support();
    DistInt::new(cdf, lo, hi).map(Distribution::Int)
}
