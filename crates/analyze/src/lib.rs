//! Static semantic analysis for SPPL programs: the pass that runs
//! between parsing and translation.
//!
//! The analyzer abstractly interprets a parsed [`Program`] without
//! building any sum-product expression:
//!
//! * **Name resolution / def-use** — use-before-define (`E001`),
//!   redefinition of random variables (`E002`, restriction R1),
//!   constant-evaluable array indices with bounds checks (`E003`), and
//!   never-read constants (`W101`).
//! * **Domain inference** — a per-variable *support lattice* (finite
//!   sets ∪ interval unions, the same [`sppl_sets::OutcomeSet`] algebra
//!   the runtime uses) is propagated through distributions, transforms,
//!   and branch guards. Every inferred support over-approximates the
//!   true one, so "definitely unsatisfiable" verdicts are sound.
//! * **Satisfiability lints** — statically-unsatisfiable
//!   `condition`/`observe` events (`E004`), dead `if`/`elif`/`switch`
//!   branches (`W102`), tautological guards (`W103`, `W105`), all
//!   branches dead (`E005`), invalid distribution parameters (`E006`),
//!   non-finite constant arithmetic (`E007`), and partial transforms
//!   applied where their argument may lie outside the domain of
//!   definition (`W104`: `log`/`sqrt` of a possibly-negative value,
//!   division by a possibly-zero value).
//!
//! [`compile_model`] is the pipeline face: parse → [`analyze`] → prune
//! dead branches → translate. Analyzer errors become structured
//! [`LangError`]s with source spans; dead branches are pruned before
//! translation by *gutting* their bodies while keeping the guard
//! expressions, so the translator builds the exact same branch events
//! and every query answer is bit-identical to the unpruned compile.
//!
//! ```
//! use sppl_analyze::check;
//!
//! let diags = check("X ~ normal(0, 1)\ncondition(X > 1 and X < 0)");
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].code.as_str(), "E004");
//! ```

#![forbid(unsafe_code)]

mod cache;
mod dists;
mod env;
mod eval;
mod sat;
mod walk;

pub use cache::{ast_digest, source_text_digest, CompileCache, CompileCacheStats};

use std::collections::HashSet;

use sppl_core::{Factory, Model};
use sppl_lang::ast::Program;

// Re-export the diagnostic vocabulary so downstream users need only this
// crate for linting.
pub use sppl_lang::diagnostics::{Diagnostic, LangError, LintCode, Severity, Span};

use walk::{VoteKind, Walker};

/// The result of analyzing a program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All diagnostics, sorted by source position then code, deduplicated.
    pub diagnostics: Vec<Diagnostic>,
    /// The program with provably-dead branch bodies emptied (guards are
    /// kept, so translation is answer-preserving to the bit). Identical
    /// to the input when nothing could be pruned; only used for
    /// translation when the analysis produced no errors.
    pub pruned: Program,
}

impl Analysis {
    /// True when no error-severity diagnostic was produced.
    pub fn is_clean(&self) -> bool {
        self.first_error().is_none()
    }

    /// The first error-severity diagnostic in source order, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }
}

/// Runs the full analysis over a parsed program.
pub fn analyze(program: &Program) -> Analysis {
    let mut w = Walker::new();
    w.exec_all(&program.commands);
    for (name, span) in w.unused_consts() {
        w.diags.push(Diagnostic::new(
            LintCode::UnusedVariable,
            span,
            format!("variable `{name}` is assigned but never used"),
        ));
    }
    // Vote-based lints: a program point inside a loop is visited once per
    // unrolled iteration; these lints require every visit to agree.
    let votes: Vec<_> = w.votes.iter().map(|(k, f)| (*k, *f)).collect();
    let mut prunable: HashSet<walk::VoteKey> = HashSet::new();
    for (key, fate) in votes {
        if fate.visits == 0 || fate.yes != fate.visits {
            continue;
        }
        let (span, idx, kind) = key;
        match kind {
            VoteKind::ArmDead => {
                w.diags.push(Diagnostic::new(
                    LintCode::DeadBranch,
                    span,
                    "branch guard is disjoint from the inferred support",
                ));
                if fate.removable {
                    prunable.insert(key);
                }
            }
            VoteKind::ElseDead => {
                w.diags.push(Diagnostic::new(
                    LintCode::DeadBranch,
                    span,
                    "else branch is unreachable: the arm guards cover the whole support",
                ));
                if fate.removable {
                    prunable.insert(key);
                }
            }
            VoteKind::CaseDead => {
                w.diags.push(Diagnostic::new(
                    LintCode::DeadBranch,
                    span,
                    format!("switch case #{idx} is disjoint from the subject's support"),
                ));
            }
            VoteKind::Taut => {
                w.diags.push(Diagnostic::new(
                    LintCode::TautologicalGuard,
                    span,
                    "branch guard is statically always true; later branches are unreachable",
                ));
            }
            VoteKind::Trivial => {
                w.diags.push(Diagnostic::new(
                    LintCode::TrivialCondition,
                    span,
                    "condition is statically always true and has no effect",
                ));
            }
        }
    }
    w.diags.sort_by(|a, b| {
        let key = |d: &Diagnostic| {
            (
                d.span.line,
                d.span.col,
                d.span.end_line,
                d.span.end_col,
                d.code,
                d.message.clone(),
            )
        };
        key(a).cmp(&key(b))
    });
    w.diags.dedup();
    let pruned = Program {
        commands: walk::prune_commands(&program.commands, &|key| prunable.contains(key)),
    };
    Analysis {
        diagnostics: w.diags,
        pruned,
    }
}

/// Parses and analyzes `source`, returning every diagnostic. A syntax
/// error is reported as a single `E000` diagnostic.
pub fn check(source: &str) -> Vec<Diagnostic> {
    match sppl_lang::parse(source) {
        Ok(program) => analyze(&program).diagnostics,
        Err(e) => vec![Diagnostic::new(LintCode::Syntax, e.span, e.message)],
    }
}

/// Parses, analyzes, prunes, and translates a program into a fresh,
/// ready-to-query [`Model`] session. The analyzer runs first: malformed
/// programs fail here with a span-carrying [`LangError`] (message
/// prefixed by the lint code) instead of panicking or failing deep
/// inside translation, and the bodies of branches the analyzer proved
/// dead are pruned before translation (bit-identically — see
/// [`Analysis::pruned`]).
///
/// # Errors
///
/// Returns [`LangError`] for syntax errors, analyzer errors
/// (`E001`–`E007`), restriction violations (R1–R4), or inference
/// failures during translation (e.g. conditioning on a
/// zero-probability event).
///
/// ```
/// use sppl_analyze::compile_model;
/// use sppl_core::prelude::*;
///
/// let model = compile_model("X ~ normal(0, 1)\nZ = X**2 + 1").unwrap();
/// // Z ≤ 2 ⇔ X² ≤ 1.
/// assert!((model.prob(&var("Z").le(2.0)).unwrap() - 0.6826894921370859).abs() < 1e-9);
///
/// // Malformed programs fail with a structured, span-carrying error.
/// let err = compile_model("X ~ normal(0, 1)\ncondition(X > 2 and X < 1)").unwrap_err();
/// assert_eq!(err.span.line, 2);
/// assert!(err.message.starts_with("[E004]"));
/// ```
pub fn compile_model(source: &str) -> Result<Model, LangError> {
    if compile_cache_enabled() {
        return global_compile_cache().compile(source);
    }
    compile_model_uncached(source)
}

/// [`compile_model`] without the process-global compile cache: always
/// parses, analyzes, and translates from scratch. The cached path is
/// observationally identical (same digest, bit-identical answers, fresh
/// factory per call) — reach for this only to measure translation
/// itself, or under `SPPL_COMPILE_CACHE=0`.
///
/// # Errors
///
/// Same conditions as [`compile_model`].
pub fn compile_model_uncached(source: &str) -> Result<Model, LangError> {
    let program = sppl_lang::parse(source)?;
    let analysis = analyze(&program);
    if let Some(d) = analysis.first_error() {
        return Err(d.clone().into());
    }
    let factory = Factory::new();
    let root = sppl_lang::translate(&factory, &analysis.pruned)?;
    Ok(Model::new(factory, root))
}

/// `SPPL_COMPILE_CACHE=0` (or `off`/`false`) disables the process-global
/// compile cache; anything else leaves it on. Read once.
fn compile_cache_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("SPPL_COMPILE_CACHE").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// The process-global cache behind [`compile_model`]: in-memory only,
/// fresh-factory mode, so repeated compiles of the same program skip
/// translation while every call still gets an independently-memoized
/// session.
fn global_compile_cache() -> &'static CompileCache {
    static CACHE: std::sync::OnceLock<CompileCache> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| CompileCache::new(64))
}

/// Lets `Model::compile(source)` read naturally at call sites: the trait
/// exists only because [`Model`] lives in `sppl-core` (which cannot
/// depend on the parser or this analyzer), and is implemented exactly
/// once, for `Model`. Bring it into scope (it is in the `sppl::prelude`)
/// and compile SPPL source — analyzer included — straight into a
/// session.
pub trait CompileModel: Sized {
    /// Parses, analyzes, and translates `source` into a fresh session —
    /// see [`compile_model`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`compile_model`].
    ///
    /// ```
    /// use sppl_core::prelude::*;
    /// use sppl_analyze::CompileModel;
    ///
    /// let model = Model::compile("X ~ normal(0, 1)").unwrap();
    /// assert!((model.prob(&var("X").le(0.0)).unwrap() - 0.5).abs() < 1e-12);
    /// ```
    fn compile(source: &str) -> Result<Self, LangError>;
}

impl CompileModel for Model {
    fn compile(source: &str) -> Result<Model, LangError> {
        compile_model(source)
    }
}
