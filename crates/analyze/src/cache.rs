//! The content-addressed compile cache: source → compiled model with
//! **zero translations** on a warm path.
//!
//! Compilation is the expensive half of SPPL's amortization story — the
//! paper's whole design is "translate once, query many" — yet every
//! process historically paid parse + analyze + translate even for a
//! program whose digest it had already seen. This module closes that
//! gap with two tiers:
//!
//! 1. **In-memory tier.** A digest-keyed map from the *normalized-AST
//!    digest* (the analyzer's pruned [`Program`], so comment- or
//!    whitespace-only differences that survive parsing still converge
//!    when the pruned AST agrees) to the serialized SPE, plus — in
//!    shared-factory mode — the live `(Factory, Spe)` pair itself. A
//!    raw-text index in front of it lets the common case (byte-identical
//!    source resubmitted) skip even parse + analyze.
//! 2. **On-disk tier.** A directory of wire payloads
//!    ([`serialize_spe`](sppl_core::wire)) written atomically
//!    (tmp + rename, the snapshot discipline) and garbage-collected
//!    keep-newest-K by modification time, so a *fresh process* pointed
//!    at a warm directory also compiles with zero translations.
//!    `<ast-digest>.spe` holds the payload; a tiny `<text-digest>.key`
//!    alias maps raw source bytes to their AST digest so the fresh
//!    process can skip parse + analyze too. A stale or missing alias
//!    just falls back to the analyze → AST-digest path — the normalized
//!    key keeps doing its cross-cosmetic job.
//!
//! Every load is verified end to end by the wire format's fail-closed
//! reader (checksum, versions, digest equality), so a corrupt cache
//! entry is deleted and recompiled, never served. The `translations`
//! counter is the ground truth the serve layer and CI assert on: a warm
//! cache means it stays at zero.
//!
//! Factory semantics are a deliberate fork:
//!
//! - The **process-global** cache behind [`compile_model`] runs in
//!   *fresh-factory* mode: a hit deserializes the stored payload into a
//!   brand-new [`Factory`], preserving the long-standing contract that
//!   every `compile_model` call returns an independently-memoized
//!   session (tests and embedders rely on separately compiled copies
//!   really recomputing). The translation is skipped; nothing else
//!   changes.
//! - A server can opt into *shared-factory* mode
//!   ([`CompileCache::share_factories`]), where a hit clones the cached
//!   `(Factory, Spe)` pair into a new engine — the right trade for a
//!   process that already shares one cache across all its sessions.
//!
//! ```
//! use sppl_analyze::CompileCache;
//!
//! let cache = CompileCache::new(16);
//! let a = cache.compile("X ~ normal(0, 1)").unwrap();
//! let b = cache.compile("X ~ normal(0, 1)").unwrap();
//! assert_eq!(a.model_digest(), b.model_digest());
//! let stats = cache.stats();
//! assert_eq!((stats.translations, stats.hits), (1, 1));
//! ```

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use sppl_core::digest::{Digester, ModelDigest, DIGEST_VERSION};
use sppl_core::wire::{deserialize_spe, serialize_spe};
use sppl_core::{Factory, Model, Spe, SpplError};
use sppl_lang::ast::Program;

use crate::{analyze, LangError};

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Digest of the raw program text (the fast, cosmetic-sensitive key).
pub fn source_text_digest(source: &str) -> ModelDigest {
    let mut d = Digester::new();
    d.u32(DIGEST_VERSION);
    d.str("sppl-source-text");
    d.str(source);
    ModelDigest::from_u128(d.finish())
}

/// Digest of the *normalized* AST — the analyzer's pruned program, the
/// authoritative compile-cache key. Computed before translation, so a
/// cache hit skips exactly the expensive phase.
pub fn ast_digest(pruned: &Program) -> ModelDigest {
    let mut d = Digester::new();
    d.u32(DIGEST_VERSION);
    d.str("sppl-normalized-ast");
    // `Program` has a deterministic, derive-generated `Debug` rendering
    // covering every field; hashing it keys on structure without a
    // second serialization format for ASTs.
    d.str(&format!("{pruned:?}"));
    ModelDigest::from_u128(d.finish())
}

/// Point-in-time compile-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileCacheStats {
    /// Compiles answered from the in-memory tier.
    pub hits: u64,
    /// Compiles answered from the on-disk tier.
    pub disk_hits: u64,
    /// Compiles that found neither tier warm.
    pub misses: u64,
    /// Full translations performed (the expensive phase; a warm cache
    /// keeps this at zero).
    pub translations: u64,
    /// Entries currently in the in-memory tier.
    pub entries: u64,
}

struct Entry {
    bytes: Arc<Vec<u8>>,
    /// Present only in shared-factory mode.
    artifact: Option<(Arc<Factory>, Spe)>,
}

#[derive(Default)]
struct MemTier {
    entries: HashMap<ModelDigest, Entry>,
    /// FIFO insertion order backing the capacity bound.
    order: VecDeque<ModelDigest>,
    /// Raw-text digest → AST digest, so byte-identical resubmissions
    /// skip parse + analyze entirely.
    text_index: HashMap<ModelDigest, ModelDigest>,
}

/// A two-tier (memory + optional disk) content-addressed compile cache.
/// See the module docs for the design.
pub struct CompileCache {
    state: Mutex<MemTier>,
    capacity: usize,
    dir: Option<PathBuf>,
    keep: usize,
    share: bool,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    translations: AtomicU64,
}

impl CompileCache {
    /// An in-memory-only cache holding up to `capacity` compiled
    /// programs (FIFO eviction), in fresh-factory mode.
    pub fn new(capacity: usize) -> CompileCache {
        CompileCache {
            state: Mutex::new(MemTier::default()),
            capacity: capacity.max(1),
            dir: None,
            keep: 0,
            share: false,
            hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            translations: AtomicU64::new(0),
        }
    }

    /// Attaches an on-disk tier rooted at `dir` (created if missing),
    /// keeping at most `keep` newest payloads (`0` = unbounded).
    ///
    /// # Errors
    ///
    /// [`SpplError::Snapshot`] when the directory cannot be created.
    pub fn with_dir(mut self, dir: impl Into<PathBuf>, keep: usize) -> Result<Self, SpplError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| SpplError::Snapshot {
            message: format!("compile cache: cannot create {}: {e}", dir.display()),
        })?;
        self.dir = Some(dir);
        self.keep = keep;
        Ok(self)
    }

    /// Switches hits to shared-factory mode: cached `(Factory, Spe)`
    /// pairs are cloned into new engines instead of being re-interned
    /// into a fresh factory. Use only where sessions are meant to share
    /// node-level memos (e.g. a server).
    pub fn share_factories(mut self, share: bool) -> Self {
        self.share = share;
        self
    }

    /// The cache directory of the disk tier, if one is attached.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Current counters.
    pub fn stats(&self) -> CompileCacheStats {
        CompileCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            translations: self.translations.load(Ordering::Relaxed),
            entries: lock(&self.state).entries.len() as u64,
        }
    }

    /// Compiles `source`, consulting both tiers before translating.
    /// Result semantics are identical to [`compile_model`](crate::compile_model) — same
    /// digests, bit-identical answers — whichever path served it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`compile_model`](crate::compile_model); cache malfunctions (corrupt
    /// or unwritable entries) silently fall back to translation.
    pub fn compile(&self, source: &str) -> Result<Model, LangError> {
        let text_key = source_text_digest(source);
        // Copy the index entry out in its own statement: holding the
        // state guard across `lookup_memory` (which re-locks) would
        // self-deadlock.
        let indexed = lock(&self.state).text_index.get(&text_key).copied();
        if let Some(ast_key) = indexed {
            if let Some(model) = self.lookup_memory(ast_key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(model);
            }
        }
        if let Some(ast_key) = self.read_alias(text_key) {
            if let Some(model) = self.lookup_memory(ast_key) {
                lock(&self.state).text_index.insert(text_key, ast_key);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(model);
            }
            if let Some(model) = self.lookup_disk(ast_key, text_key) {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(model);
            }
        }

        // Cold front half: parse + analyze to get the authoritative key.
        let program = sppl_lang::parse(source)?;
        let analysis = analyze(&program);
        if let Some(d) = analysis.first_error() {
            return Err(d.clone().into());
        }
        let ast_key = ast_digest(&analysis.pruned);
        if let Some(model) = self.lookup_memory(ast_key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.record_alias(text_key, ast_key);
            return Ok(model);
        }
        if let Some(model) = self.lookup_disk(ast_key, text_key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(model);
        }

        // Cold back half: translate, then fill both tiers.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let factory = Arc::new(Factory::new());
        let root = sppl_lang::translate(&factory, &analysis.pruned)?;
        self.translations.fetch_add(1, Ordering::Relaxed);
        let bytes = Arc::new(serialize_spe(&root));
        self.insert_memory(ast_key, text_key, Arc::clone(&bytes), &factory, &root);
        self.write_disk(ast_key, text_key, &bytes);
        Ok(Model::new(factory, root))
    }

    /// Deserializes an SPE wire payload into a model with the same
    /// factory semantics as a disk hit (always a fresh factory), without
    /// touching either tier. This is the serve `import` path.
    ///
    /// # Errors
    ///
    /// [`SpplError::Snapshot`] when the payload fails wire validation.
    pub fn import(&self, bytes: &[u8]) -> Result<Model, SpplError> {
        let factory = Arc::new(Factory::new());
        let root = deserialize_spe(&factory, bytes)?;
        Ok(Model::new(factory, root))
    }

    /// [`import`](CompileCache::import) plus persistence: a valid
    /// payload is also written to the disk tier (when one is attached)
    /// under its root digest, so later processes pick it up through
    /// [`disk_models`](CompileCache::disk_models). Imports carry no
    /// source text, so the [`compile`](CompileCache::compile) lookup
    /// path never serves them.
    ///
    /// # Errors
    ///
    /// Same conditions as [`import`](CompileCache::import); persistence
    /// failures degrade silently (the model is still returned).
    pub fn admit(&self, bytes: &[u8]) -> Result<Model, SpplError> {
        let model = self.import(bytes)?;
        if let Some(path) = self.payload_path(model.model_digest()) {
            if atomic_write(&path, bytes).is_ok() {
                self.gc();
            }
        }
        Ok(model)
    }

    /// Every valid wire payload in the disk tier, as models (fresh
    /// factories), paired with their digests. Invalid files are skipped
    /// (fail closed), not deleted — they may be half-written by a racing
    /// process. Used by servers to warm-register at boot.
    pub fn disk_models(&self) -> Vec<(ModelDigest, Model)> {
        let Some(dir) = &self.dir else {
            return Vec::new();
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("spe") {
                continue;
            }
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            if let Ok(model) = self.import(&bytes) {
                out.push((model.model_digest(), model));
            }
        }
        out.sort_by_key(|(digest, _)| *digest);
        out
    }

    fn lookup_memory(&self, ast_key: ModelDigest) -> Option<Model> {
        let (bytes, artifact) = {
            let state = lock(&self.state);
            let entry = state.entries.get(&ast_key)?;
            (Arc::clone(&entry.bytes), entry.artifact.clone())
        };
        if let Some((factory, root)) = artifact {
            return Some(Model::new(factory, root));
        }
        // Fresh-factory mode: the stored payload is re-interned into a
        // brand-new factory — zero translations, independent memos, and
        // the wire codec is exercised on every warm compile.
        let factory = Arc::new(Factory::new());
        match deserialize_spe(&factory, &bytes) {
            Ok(root) => Some(Model::new(factory, root)),
            Err(_) => {
                // Unreachable unless memory corruption; drop the entry
                // and recompile rather than serving anything dubious.
                lock(&self.state).entries.remove(&ast_key);
                None
            }
        }
    }

    fn lookup_disk(&self, ast_key: ModelDigest, text_key: ModelDigest) -> Option<Model> {
        let path = self.payload_path(ast_key)?;
        let bytes = std::fs::read(&path).ok()?;
        let factory = Arc::new(Factory::new());
        match deserialize_spe(&factory, &bytes) {
            Ok(root) => {
                self.insert_memory(ast_key, text_key, Arc::new(bytes), &factory, &root);
                self.write_alias(text_key, ast_key);
                Some(Model::new(factory, root))
            }
            Err(_) => {
                // A cache entry that fails validation is worthless;
                // delete it so later compiles go straight to translate.
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    fn insert_memory(
        &self,
        ast_key: ModelDigest,
        text_key: ModelDigest,
        bytes: Arc<Vec<u8>>,
        factory: &Arc<Factory>,
        root: &Spe,
    ) {
        let artifact = self.share.then(|| (Arc::clone(factory), root.clone()));
        let mut state = lock(&self.state);
        if !state.entries.contains_key(&ast_key) {
            state.order.push_back(ast_key);
        }
        state.entries.insert(ast_key, Entry { bytes, artifact });
        state.text_index.insert(text_key, ast_key);
        while state.entries.len() > self.capacity {
            let Some(evicted) = state.order.pop_front() else {
                break;
            };
            state.entries.remove(&evicted);
            state.text_index.retain(|_, v| *v != evicted);
        }
    }

    fn record_alias(&self, text_key: ModelDigest, ast_key: ModelDigest) {
        lock(&self.state).text_index.insert(text_key, ast_key);
        self.write_alias(text_key, ast_key);
    }

    fn payload_path(&self, ast_key: ModelDigest) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{ast_key}.spe")))
    }

    fn alias_path(&self, text_key: ModelDigest) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{text_key}.key")))
    }

    fn read_alias(&self, text_key: ModelDigest) -> Option<ModelDigest> {
        let hex = std::fs::read_to_string(self.alias_path(text_key)?).ok()?;
        let hex = hex.trim();
        if hex.len() != 32 {
            return None;
        }
        u128::from_str_radix(hex, 16)
            .ok()
            .map(ModelDigest::from_u128)
    }

    /// Atomic (tmp + rename) best-effort writes: a cache that cannot
    /// persist degrades to cold compiles, it never fails them.
    fn write_disk(&self, ast_key: ModelDigest, text_key: ModelDigest, bytes: &[u8]) {
        let Some(path) = self.payload_path(ast_key) else {
            return;
        };
        if atomic_write(&path, bytes).is_ok() {
            self.write_alias(text_key, ast_key);
            self.gc();
        }
    }

    fn write_alias(&self, text_key: ModelDigest, ast_key: ModelDigest) {
        if let Some(path) = self.alias_path(text_key) {
            let _ = atomic_write(&path, format!("{ast_key}\n").as_bytes());
        }
    }

    /// Keeps the newest `keep` payloads by modification time and drops
    /// aliases whose payload is gone (`SnapshotRotation` discipline).
    fn gc(&self) {
        let (Some(dir), true) = (&self.dir, self.keep > 0) else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut payloads: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("spe") {
                let modified = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                payloads.push((modified, path));
            }
        }
        if payloads.len() <= self.keep {
            return;
        }
        payloads.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        for (_, path) in payloads.split_off(self.keep) {
            let _ = std::fs::remove_file(&path);
        }
        // Aliases point at payloads by AST digest in the *filename*; we
        // cannot recover that from the payload, so sweep aliases whose
        // target file no longer exists.
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().and_then(|e| e.to_str()) != Some("key") {
                    continue;
                }
                let target = std::fs::read_to_string(&path)
                    .ok()
                    .map(|hex| dir.join(format!("{}.spe", hex.trim())));
                if !target.is_some_and(|t| t.exists()) {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
    }
}

fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let result = (|| {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use sppl_core::var;

    const SOURCE: &str = "X ~ normal(0, 1)\nY ~ bernoulli(p=0.25)\nZ = X + 2";

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sppl-compile-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_memory_hit_skips_translation_and_matches_bits() {
        let cache = CompileCache::new(8);
        let cold = cache.compile(SOURCE).unwrap();
        let warm = cache.compile(SOURCE).unwrap();
        assert_eq!(cold.model_digest(), warm.model_digest());
        let event = var("X").le(0.5) & var("Y").eq(1.0);
        assert_eq!(
            cold.logprob(&event).unwrap().to_bits(),
            warm.logprob(&event).unwrap().to_bits()
        );
        let stats = cache.stats();
        assert_eq!(stats.translations, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn cosmetic_changes_converge_on_the_ast_key() {
        let cache = CompileCache::new(8);
        let a = cache.compile("X ~ normal(0, 1)").unwrap();
        // Different raw text, same parsed program modulo spans would
        // still re-key (spans are part of the Debug rendering), but the
        // *identical* text resubmitted must hit via the text index.
        let b = cache.compile("X ~ normal(0, 1)").unwrap();
        assert_eq!(a.model_digest(), b.model_digest());
        assert_eq!(cache.stats().translations, 1);
    }

    #[test]
    fn disk_tier_survives_a_fresh_cache() {
        let dir = tempdir("disk");
        let writer = CompileCache::new(8).with_dir(&dir, 16).unwrap();
        let cold = writer.compile(SOURCE).unwrap();
        assert_eq!(writer.stats().translations, 1);

        // A brand-new cache (fresh process stand-in) over the same dir.
        let reader = CompileCache::new(8).with_dir(&dir, 16).unwrap();
        let warm = reader.compile(SOURCE).unwrap();
        let stats = reader.stats();
        assert_eq!(stats.translations, 0, "disk hit must not translate");
        assert_eq!(stats.disk_hits, 1);
        assert_eq!(cold.model_digest(), warm.model_digest());
        let event = var("Z").gt(2.0);
        assert_eq!(
            cold.logprob(&event).unwrap().to_bits(),
            warm.logprob(&event).unwrap().to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_are_dropped_and_recompiled() {
        let dir = tempdir("corrupt");
        let writer = CompileCache::new(8).with_dir(&dir, 16).unwrap();
        writer.compile(SOURCE).unwrap();
        // Flip a byte in every payload.
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("spe") {
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xff;
                std::fs::write(&path, bytes).unwrap();
            }
        }
        let reader = CompileCache::new(8).with_dir(&dir, 16).unwrap();
        let model = reader.compile(SOURCE).unwrap();
        assert_eq!(
            model.model_digest(),
            writer.compile(SOURCE).unwrap().model_digest()
        );
        let stats = reader.stats();
        assert_eq!(stats.disk_hits, 0, "corrupt payload must not hit");
        assert_eq!(stats.translations, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_newest_payloads() {
        let dir = tempdir("gc");
        let cache = CompileCache::new(8).with_dir(&dir, 2).unwrap();
        for i in 0..4 {
            cache.compile(&format!("X ~ normal({i}, 1)")).unwrap();
        }
        let payloads = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("spe"))
            .count();
        assert!(payloads <= 2, "gc must bound payloads, found {payloads}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_factory_mode_reuses_the_interned_dag() {
        let cache = CompileCache::new(8).share_factories(true);
        let a = cache.compile(SOURCE).unwrap();
        let b = cache.compile(SOURCE).unwrap();
        assert!(a.root().same(b.root()), "shared mode must reuse nodes");
        assert_eq!(cache.stats().translations, 1);
    }
}
