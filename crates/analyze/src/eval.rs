//! Abstract expression evaluation: a diagnostics-emitting mirror of the
//! translator's evaluator. Where the translator would hard-error, the
//! abstract evaluator either emits a catalogued [`LintCode`] diagnostic
//! or degrades to [`AbsValue::Top`] and lets the translator report the
//! condition with its own message.

use std::collections::HashMap;

use sppl_core::event::Event;
use sppl_core::transform::Transform;
use sppl_core::var::Var;
use sppl_lang::ast::{BinOp, CmpOp, Expr, UnOp};
use sppl_lang::diagnostics::{LintCode, Span};
use sppl_lang::translate::Value;
use sppl_num::Polynomial;
use sppl_sets::{Interval, OutcomeSet};

use crate::dists::{self, DistVerdict, Param};
use crate::env::ConstVal;
use crate::walk::Walker;

/// The analyzer's counterpart of the translator's `Evaluated`.
#[derive(Debug, Clone)]
pub(crate) enum AbsValue {
    /// A known compile-time constant.
    Const(Value),
    /// A transform of random variables (not yet resolved to base vars).
    Rv(Transform),
    /// A distribution whose samples lie in the given support.
    Dist(OutcomeSet),
    /// A predicate.
    Event(Event),
    /// Unknown value (lost at a join, or a form the analyzer does not
    /// model); suppresses all downstream diagnostics.
    Top,
}

fn bad_log_inputs() -> OutcomeSet {
    OutcomeSet::from(Interval::below(0.0, true).expect("0 is a valid bound"))
}

fn bad_even_root_inputs() -> OutcomeSet {
    OutcomeSet::from(Interval::below(0.0, false).expect("0 is a valid bound"))
}

impl Walker {
    pub(crate) fn eval(&mut self, expr: &Expr) -> AbsValue {
        match expr {
            Expr::Num(n, _) => AbsValue::Const(Value::Num(*n)),
            Expr::Str(s, _) => AbsValue::Const(Value::Str(s.clone())),
            Expr::Bool(b, _) => AbsValue::Const(Value::Bool(*b)),
            Expr::Ident(name, span) => self.eval_ident(name, *span),
            Expr::List(items, _) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match self.eval(item) {
                        AbsValue::Const(v) => out.push(v),
                        _ => return AbsValue::Top,
                    }
                }
                AbsValue::Const(Value::List(out))
            }
            Expr::Dict(..) => AbsValue::Top,
            Expr::Index(recv, idx, span) => self.eval_index(recv, idx, *span),
            Expr::Call {
                func,
                args,
                kwargs,
                span,
            } => self.eval_call(func, args, kwargs, *span),
            Expr::MethodCall {
                recv, method, args, ..
            } => self.eval_method(recv, method, args),
            Expr::Unary(op, inner, _) => {
                let v = self.eval(inner);
                match (op, v) {
                    (UnOp::Neg, AbsValue::Const(Value::Num(n))) => AbsValue::Const(Value::Num(-n)),
                    (UnOp::Neg, AbsValue::Rv(t)) => AbsValue::Rv(t.neg()),
                    (UnOp::Not, v) => match self.coerce_event(v) {
                        Some(e) => AbsValue::Event(e.negate()),
                        None => AbsValue::Top,
                    },
                    (_, _) => AbsValue::Top,
                }
            }
            Expr::Binary(op, lhs, rhs, span) => {
                let a = self.eval(lhs);
                let b = self.eval(rhs);
                self.eval_binary(*op, a, b, *span)
            }
            Expr::Compare(first, chain, span) => self.eval_compare(first, chain, *span),
        }
    }

    /// Use of a name: constants, random variables, then use-before-define.
    fn eval_ident(&mut self, name: &str, span: Span) -> AbsValue {
        if let Some(c) = self.env.consts.get(name).cloned() {
            self.mark_used(name);
            return match c {
                ConstVal::Known(v) => AbsValue::Const(v),
                ConstVal::Unknown => AbsValue::Top,
            };
        }
        if self.env.rvs.contains(name) || self.env.maybe_rvs.contains(name) {
            return AbsValue::Rv(Transform::id(Var::new(name)));
        }
        if self.env.arrays.contains_key(name) {
            self.diag(
                LintCode::UseBeforeDefine,
                span,
                format!("array `{name}` cannot be used without an index"),
            );
            return AbsValue::Top;
        }
        self.diag(
            LintCode::UseBeforeDefine,
            span,
            format!("use of undefined variable `{name}`"),
        );
        AbsValue::Top
    }

    fn eval_index(&mut self, recv: &Expr, idx: &Expr, span: Span) -> AbsValue {
        if let Expr::Ident(name, _) = recv {
            if self.env.arrays.contains_key(name) {
                return match self.element_name(name, idx, span) {
                    Some(element) => {
                        if self.env.rvs.contains(&element)
                            || self.env.maybe_rvs.contains(&element)
                            || self.env.havoc_arrays.contains(name)
                        {
                            AbsValue::Rv(Transform::id(Var::new(&element)))
                        } else {
                            self.diag(
                                LintCode::UseBeforeDefine,
                                span,
                                format!("array element {element} is not yet sampled"),
                            );
                            AbsValue::Top
                        }
                    }
                    None => AbsValue::Top,
                };
            }
        }
        // Constant list indexing.
        let list = match self.eval(recv) {
            AbsValue::Const(Value::List(vs)) => vs,
            _ => return AbsValue::Top,
        };
        match self.eval(idx) {
            AbsValue::Const(Value::Num(n)) if n.fract() == 0.0 => {
                let i = n as i64;
                if i < 0 || i as usize >= list.len() {
                    self.diag(
                        LintCode::IndexOutOfBounds,
                        span,
                        format!("index {i} out of bounds (len {})", list.len()),
                    );
                    return AbsValue::Top;
                }
                AbsValue::Const(list[i as usize].clone())
            }
            _ => AbsValue::Top,
        }
    }

    /// Resolves `name[idx]` to the element's variable name, checking
    /// declared bounds. `None` when the index is unknown (the enclosing
    /// array is marked havoc so element accesses stay permissive).
    pub(crate) fn element_name(&mut self, name: &str, idx: &Expr, span: Span) -> Option<String> {
        let size = *self.env.arrays.get(name)?;
        match self.eval(idx) {
            AbsValue::Const(Value::Num(n)) if n.fract() == 0.0 => {
                let i = n as i64;
                if let Some(size) = size {
                    if i < 0 || i as usize >= size {
                        self.diag(
                            LintCode::IndexOutOfBounds,
                            span,
                            format!("index {i} out of bounds for array {name} of size {size}"),
                        );
                        return None;
                    }
                }
                Some(format!("{name}[{i}]"))
            }
            _ => {
                self.env.havoc_arrays.insert(name.to_string());
                None
            }
        }
    }

    fn eval_method(&mut self, recv: &Expr, method: &str, _args: &[Expr]) -> AbsValue {
        let r = self.eval(recv);
        match (r, method) {
            (AbsValue::Const(Value::Bin { lo, hi, .. }), "mean") => {
                AbsValue::Const(Value::Num((lo + hi) / 2.0))
            }
            (AbsValue::Const(Value::Bin { lo, .. }), "lo") => AbsValue::Const(Value::Num(lo)),
            (AbsValue::Const(Value::Bin { hi, .. }), "hi") => AbsValue::Const(Value::Num(hi)),
            (AbsValue::Const(Value::List(vs)), "len") => {
                AbsValue::Const(Value::Num(vs.len() as f64))
            }
            _ => AbsValue::Top,
        }
    }

    fn eval_binary(&mut self, op: BinOp, a: AbsValue, b: AbsValue, span: Span) -> AbsValue {
        use AbsValue::{Const, Rv};
        match op {
            BinOp::And | BinOp::Or => {
                let (Some(ea), Some(eb)) = (self.coerce_event(a), self.coerce_event(b)) else {
                    return AbsValue::Top;
                };
                AbsValue::Event(match op {
                    BinOp::And => Event::and(vec![ea, eb]),
                    _ => Event::or(vec![ea, eb]),
                })
            }
            _ => match (a, b) {
                (Const(Value::Num(x)), Const(Value::Num(y))) => {
                    let v = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => {
                            if y == 0.0 {
                                return AbsValue::Top;
                            }
                            x / y
                        }
                        BinOp::Pow => x.powf(y),
                        BinOp::And | BinOp::Or => unreachable!("handled above"),
                    };
                    if v.is_nan() {
                        self.diag(
                            LintCode::NonFiniteConstant,
                            span,
                            "constant arithmetic produces NaN (undefined value)",
                        );
                        return AbsValue::Top;
                    }
                    Const(Value::Num(v))
                }
                (Rv(t), Const(Value::Num(c))) => self.rv_const_op(op, t, c, false, span),
                (Const(Value::Num(c)), Rv(t)) => self.rv_const_op(op, t, c, true, span),
                (Rv(ta), Rv(tb)) => rv_rv_op(op, ta, tb),
                _ => AbsValue::Top,
            },
        }
    }

    fn rv_const_op(
        &mut self,
        op: BinOp,
        t: Transform,
        c: f64,
        flipped: bool,
        span: Span,
    ) -> AbsValue {
        let out = match (op, flipped) {
            (BinOp::Add, _) => t.add_const(c),
            (BinOp::Sub, false) => t.add_const(-c),
            (BinOp::Sub, true) => t.neg().add_const(c),
            (BinOp::Mul, _) => t.mul_const(c),
            (BinOp::Div, false) => {
                if c == 0.0 {
                    return AbsValue::Top;
                }
                t.mul_const(1.0 / c)
            }
            (BinOp::Div, true) => {
                self.check_domain(
                    &t,
                    OutcomeSet::real_point(0.0),
                    "division by a possibly zero random value",
                    span,
                );
                t.recip().mul_const(c)
            }
            (BinOp::Pow, false) => {
                if c >= 0.0 && c.fract() == 0.0 {
                    t.pow_int(c as u32)
                } else if c == 0.5 {
                    self.check_domain(
                        &t,
                        bad_even_root_inputs(),
                        "sqrt of a possibly negative random value",
                        span,
                    );
                    t.sqrt()
                } else if c == -1.0 {
                    self.check_domain(
                        &t,
                        OutcomeSet::real_point(0.0),
                        "division by a possibly zero random value",
                        span,
                    );
                    t.recip()
                } else if c < 0.0 && c.fract() == 0.0 {
                    self.check_domain(
                        &t,
                        OutcomeSet::real_point(0.0),
                        "division by a possibly zero random value",
                        span,
                    );
                    t.pow_int((-c) as u32).recip()
                } else if c > 0.0 && (1.0 / c).fract().abs() < 1e-12 {
                    let n = (1.0 / c) as u32;
                    if n % 2 == 0 {
                        self.check_domain(
                            &t,
                            bad_even_root_inputs(),
                            "even root of a possibly negative random value",
                            span,
                        );
                    }
                    t.root(n)
                } else {
                    return AbsValue::Top;
                }
            }
            (BinOp::Pow, true) => {
                if c <= 0.0 || c == 1.0 {
                    return AbsValue::Top;
                }
                t.exp_base(c)
            }
            (BinOp::And | BinOp::Or, _) => return AbsValue::Top,
        };
        AbsValue::Rv(out)
    }

    /// `W104`: warn when a partial transform is applied to a value whose
    /// inferred support overlaps the transform's undefined/bad region.
    fn check_domain(&mut self, t: &Transform, bad: OutcomeSet, what: &str, span: Span) {
        let resolved = self.env.resolve_transform(t);
        if let Some(v) = resolved.the_var() {
            let overlap = resolved
                .preimage_full(&bad)
                .intersection(&self.env.support_of(v.name()));
            if !overlap.is_empty() {
                self.diag(LintCode::InvalidTransformDomain, span, what);
            }
        }
    }

    fn eval_compare(&mut self, first: &Expr, chain: &[(CmpOp, Expr)], span: Span) -> AbsValue {
        let mut operands = vec![self.eval(first)];
        for (_, e) in chain {
            operands.push(self.eval(e));
        }
        let mut events: Vec<Event> = Vec::new();
        let mut statically_false = false;
        for (i, (op, _)) in chain.iter().enumerate() {
            match self.compare_pair(*op, &operands[i], &operands[i + 1], span) {
                Some(CompareResult::Event(e)) => events.push(e),
                Some(CompareResult::Static(true)) => {}
                Some(CompareResult::Static(false)) => statically_false = true,
                None => return AbsValue::Top,
            }
        }
        if statically_false {
            return AbsValue::Event(Event::never());
        }
        if events.is_empty() {
            return AbsValue::Const(Value::Bool(true));
        }
        AbsValue::Event(Event::and(events))
    }

    fn compare_pair(
        &mut self,
        op: CmpOp,
        lhs: &AbsValue,
        rhs: &AbsValue,
        span: Span,
    ) -> Option<CompareResult> {
        use AbsValue::{Const, Rv};
        match (lhs, rhs) {
            (Const(a), Const(b)) => static_compare(op, a, b).map(CompareResult::Static),
            (Rv(t), Const(v)) => self.rv_compare(op, t, v, false, span),
            (Const(v), Rv(t)) => self.rv_compare(op, t, v, true, span),
            _ => None,
        }
    }

    fn rv_compare(
        &mut self,
        op: CmpOp,
        t: &Transform,
        v: &Value,
        flipped: bool,
        span: Span,
    ) -> Option<CompareResult> {
        let op = if flipped {
            match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                other => other,
            }
        } else {
            op
        };
        if let Value::Num(r) = v {
            if !r.is_finite() {
                self.diag(
                    LintCode::NonFiniteConstant,
                    span,
                    format!("comparison against a non-finite constant ({r})"),
                );
                return None;
            }
        }
        let ev = match (op, v) {
            (CmpOp::Lt, Value::Num(r)) => Event::lt(t.clone(), *r),
            (CmpOp::Le, Value::Num(r)) => Event::le(t.clone(), *r),
            (CmpOp::Gt, Value::Num(r)) => Event::gt(t.clone(), *r),
            (CmpOp::Ge, Value::Num(r)) => Event::ge(t.clone(), *r),
            (CmpOp::Eq, Value::Num(r)) => Event::eq_real(t.clone(), *r),
            (CmpOp::Ne, Value::Num(r)) => Event::eq_real(t.clone(), *r).negate(),
            (CmpOp::Eq, Value::Str(s)) => Event::eq_str(t.clone(), s),
            (CmpOp::Ne, Value::Str(s)) => Event::eq_str(t.clone(), s).negate(),
            (CmpOp::Eq, Value::Bool(b)) => Event::eq_real(t.clone(), f64::from(*b)),
            (CmpOp::Ne, Value::Bool(b)) => Event::eq_real(t.clone(), f64::from(*b)).negate(),
            (CmpOp::In, Value::List(items)) => {
                let set = self.values_to_set(items, span)?;
                Event::in_set(t.clone(), set)
            }
            (CmpOp::In, Value::Bin { lo, hi, last }) => {
                Event::in_set(t.clone(), bin_set(*lo, *hi, *last))
            }
            _ => return None,
        };
        Some(CompareResult::Event(ev))
    }

    fn values_to_set(&mut self, items: &[Value], span: Span) -> Option<OutcomeSet> {
        let mut out = OutcomeSet::empty();
        for item in items {
            let piece = match item {
                Value::Num(n) if !n.is_finite() => {
                    self.diag(
                        LintCode::NonFiniteConstant,
                        span,
                        "membership sets must contain finite numbers",
                    );
                    return None;
                }
                Value::Num(n) => OutcomeSet::real_point(*n),
                Value::Str(s) => OutcomeSet::strings([s.as_str()]),
                Value::Bool(b) => OutcomeSet::real_point(f64::from(*b)),
                Value::Bin { lo, hi, last } => bin_set(*lo, *hi, *last),
                Value::List(_) => return None,
            };
            out = out.union(&piece);
        }
        Some(out)
    }

    fn eval_call(
        &mut self,
        func: &str,
        args: &[Expr],
        kwargs: &[(String, Expr)],
        span: Span,
    ) -> AbsValue {
        if let "exp" | "ln" | "log" | "sqrt" | "abs" = func {
            if args.len() != 1 || !kwargs.is_empty() {
                return AbsValue::Top;
            }
            return match self.eval(&args[0]) {
                AbsValue::Const(Value::Num(x)) => {
                    let v = match func {
                        "exp" => x.exp(),
                        "ln" | "log" => x.ln(),
                        "sqrt" => x.sqrt(),
                        _ => x.abs(),
                    };
                    if v.is_nan() {
                        self.diag(
                            LintCode::NonFiniteConstant,
                            span,
                            format!("{func}({x}) is undefined (argument outside the domain)"),
                        );
                        return AbsValue::Top;
                    }
                    AbsValue::Const(Value::Num(v))
                }
                AbsValue::Rv(t) => {
                    let out = match func {
                        "exp" => t.exp(),
                        "ln" | "log" => {
                            self.check_domain(
                                &t,
                                bad_log_inputs(),
                                "log of a possibly non-positive random value",
                                span,
                            );
                            t.ln()
                        }
                        "sqrt" => {
                            self.check_domain(
                                &t,
                                bad_even_root_inputs(),
                                "sqrt of a possibly negative random value",
                                span,
                            );
                            t.sqrt()
                        }
                        _ => t.abs(),
                    };
                    AbsValue::Rv(out)
                }
                _ => AbsValue::Top,
            };
        }
        match func {
            "range" => {
                let (lo, hi) = match args.len() {
                    1 => (Some(0), self.eval_integer(&args[0])),
                    2 => (self.eval_integer(&args[0]), self.eval_integer(&args[1])),
                    _ => return AbsValue::Top,
                };
                let (Some(lo), Some(hi)) = (lo, hi) else {
                    return AbsValue::Top;
                };
                if hi < lo {
                    return AbsValue::Top;
                }
                AbsValue::Const(Value::List(
                    (lo..hi).map(|i| Value::Num(i as f64)).collect(),
                ))
            }
            "binspace" => {
                let mut pos = Vec::new();
                for a in args {
                    match self.eval_number(a) {
                        Some(Some(v)) => pos.push(v),
                        _ => return AbsValue::Top,
                    }
                }
                let mut n = None;
                for (k, v) in kwargs {
                    if k == "n" {
                        match self.eval_number(v) {
                            Some(Some(v)) => n = Some(v as usize),
                            _ => return AbsValue::Top,
                        }
                    } else {
                        return AbsValue::Top;
                    }
                }
                let (&[lo, hi], Some(n)) = (pos.as_slice(), n) else {
                    return AbsValue::Top;
                };
                if !lo.is_finite() || !hi.is_finite() || n == 0 || hi <= lo {
                    return AbsValue::Top;
                }
                let step = (hi - lo) / n as f64;
                AbsValue::Const(Value::List(
                    (0..n)
                        .map(|i| Value::Bin {
                            lo: lo + step * i as f64,
                            hi: if i + 1 == n {
                                hi
                            } else {
                                lo + step * (i + 1) as f64
                            },
                            last: i + 1 == n,
                        })
                        .collect(),
                ))
            }
            "array" => AbsValue::Top,
            _ => self.eval_distribution(func, args, kwargs, span),
        }
    }

    /// Evaluates an expression expected to be a constant number.
    /// `Some(Some(v))` known, `Some(None)` unknown, `None` invalid
    /// (non-numeric or random — an R4 violation for parameters).
    fn eval_number(&mut self, e: &Expr) -> Option<Param> {
        match self.eval(e) {
            AbsValue::Const(Value::Num(n)) => Some(Some(n)),
            AbsValue::Top => Some(None),
            _ => None,
        }
    }

    pub(crate) fn eval_integer(&mut self, e: &Expr) -> Option<i64> {
        match self.eval(e) {
            AbsValue::Const(Value::Num(n)) if n.fract() == 0.0 => Some(n as i64),
            _ => None,
        }
    }

    fn eval_distribution(
        &mut self,
        func: &str,
        args: &[Expr],
        kwargs: &[(String, Expr)],
        span: Span,
    ) -> AbsValue {
        let mut pos: Vec<Param> = Vec::new();
        let mut dict: Option<Vec<(Value, Param)>> = None;
        let mut r4_violation = false;
        for a in args {
            if let Expr::Dict(items, _) = a {
                let mut pairs = Vec::new();
                for (k, v) in items {
                    let key = match self.eval(k) {
                        AbsValue::Const(c) => c,
                        _ => return AbsValue::Top,
                    };
                    let w = match self.eval_number(v) {
                        Some(w) => w,
                        None => {
                            r4_violation = true;
                            None
                        }
                    };
                    pairs.push((key, w));
                }
                dict = Some(pairs);
            } else {
                match self.eval_number(a) {
                    Some(p) => pos.push(p),
                    None => {
                        self.diag(
                            LintCode::InvalidParameter,
                            a.span(),
                            "distribution parameters must be compile-time constants (R4)",
                        );
                        r4_violation = true;
                        pos.push(None);
                    }
                }
            }
        }
        let mut named: HashMap<&str, Param> = HashMap::new();
        for (k, v) in kwargs {
            match self.eval_number(v) {
                Some(p) => {
                    named.insert(k.as_str(), p);
                }
                None => {
                    self.diag(
                        LintCode::InvalidParameter,
                        v.span(),
                        "distribution parameters must be compile-time constants (R4)",
                    );
                    r4_violation = true;
                    named.insert(k.as_str(), None);
                }
            }
        }
        match dists::infer(func, &pos, &named, dict.as_deref()) {
            DistVerdict::Ok(support) => AbsValue::Dist(support),
            DistVerdict::Invalid(msg, fallback) => {
                if !r4_violation {
                    self.diag(LintCode::InvalidParameter, span, msg);
                }
                AbsValue::Dist(fallback)
            }
            DistVerdict::UnknownName => {
                self.diag(
                    LintCode::UseBeforeDefine,
                    span,
                    format!("unknown function or distribution `{func}`"),
                );
                AbsValue::Top
            }
        }
    }

    /// Coerces a value to a predicate, mirroring the translator's
    /// truthiness rules. `None` when unknown.
    pub(crate) fn coerce_event(&mut self, v: AbsValue) -> Option<Event> {
        match v {
            AbsValue::Event(e) => Some(e),
            AbsValue::Const(Value::Bool(b)) => {
                Some(if b { Event::always() } else { Event::never() })
            }
            AbsValue::Const(Value::Num(n)) => Some(if n != 0.0 {
                Event::always()
            } else {
                Event::never()
            }),
            AbsValue::Rv(t) => Some(Event::eq_real(t, 0.0).negate()),
            _ => None,
        }
    }
}

enum CompareResult {
    Event(Event),
    Static(bool),
}

fn static_compare(op: CmpOp, a: &Value, b: &Value) -> Option<bool> {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => Some(match op {
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::In => return None,
        }),
        (Value::Str(x), Value::Str(y)) => match op {
            CmpOp::Eq => Some(x == y),
            CmpOp::Ne => Some(x != y),
            _ => None,
        },
        (Value::Bool(x), Value::Bool(y)) => match op {
            CmpOp::Eq => Some(x == y),
            CmpOp::Ne => Some(x != y),
            _ => None,
        },
        (v, Value::List(items)) if op == CmpOp::In => Some(items.iter().any(|i| i == v)),
        (Value::Num(x), Value::Bin { lo, hi, last }) if op == CmpOp::In => {
            Some(*x >= *lo && (*x < *hi || (*last && *x <= *hi)))
        }
        _ => None,
    }
}

fn rv_rv_op(op: BinOp, ta: Transform, tb: Transform) -> AbsValue {
    let (ia, pa) = poly_view(&ta);
    let (ib, pb) = poly_view(&tb);
    if ia != ib {
        return AbsValue::Top;
    }
    let p = match op {
        BinOp::Add => pa.add(&pb),
        BinOp::Sub => pa.sub(&pb),
        BinOp::Mul => pa.mul(&pb),
        _ => return AbsValue::Top,
    };
    AbsValue::Rv(Transform::poly(ia.clone(), p))
}

fn poly_view(t: &Transform) -> (&Transform, Polynomial) {
    match t {
        Transform::Poly(inner, p) => (inner, p.clone()),
        other => (other, Polynomial::identity()),
    }
}

pub(crate) fn bin_set(lo: f64, hi: f64, last: bool) -> OutcomeSet {
    let iv = if last {
        Interval::closed(lo, hi)
    } else {
        Interval::closed_open(lo, hi)
    };
    OutcomeSet::from(iv)
}

/// Case value → guard event for `switch` desugaring (mirrors the
/// translator's `case_event`).
pub(crate) fn case_event(t: &Transform, case: &Value) -> Option<Event> {
    match case {
        Value::Num(n) if !n.is_finite() => None,
        Value::Num(n) => Some(Event::eq_real(t.clone(), *n)),
        Value::Str(s) => Some(Event::eq_str(t.clone(), s)),
        Value::Bool(b) => Some(Event::eq_real(t.clone(), f64::from(*b))),
        Value::Bin { lo, hi, last } => Some(Event::in_set(t.clone(), bin_set(*lo, *hi, *last))),
        Value::List(_) => None,
    }
}

/// Static case matching for constant switch subjects.
pub(crate) fn static_case_matches(subject: &Value, case: &Value) -> bool {
    match (subject, case) {
        (Value::Num(x), Value::Bin { lo, hi, last }) => {
            *x >= *lo && (*x < *hi || (*last && *x <= *hi))
        }
        (a, b) => a == b,
    }
}
