//! Criterion micro-benchmarks for the core pipeline stages: translation,
//! probability queries, conditioning, and the fairness workload (the
//! timing substrate behind Tables 2 and 4).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sppl_core::condition::condition;
use sppl_core::density::constrain;
use sppl_core::engine::QueryEngine;
use sppl_core::event::Event;
use sppl_core::transform::Transform;
use sppl_core::var::Var;
use sppl_core::Factory;
use sppl_models::{fairness, hmm, indian_gpa};

fn bench_translate(c: &mut Criterion) {
    let mut g = c.benchmark_group("translate");
    g.sample_size(10);
    g.bench_function("indian_gpa", |b| {
        let model = indian_gpa::model();
        b.iter(|| {
            let f = Factory::new();
            black_box(model.compile(&f).unwrap())
        })
    });
    g.bench_function("hmm_20", |b| {
        let model = hmm::hierarchical_hmm(20);
        b.iter(|| {
            let f = Factory::new();
            black_box(model.compile(&f).unwrap())
        })
    });
    g.bench_function("dt14_bayesnet1", |b| {
        let task = fairness::task(
            fairness::DecisionTree::Dt14,
            fairness::Population::BayesNet1,
        );
        b.iter(|| {
            let f = Factory::new();
            black_box(task.model.compile(&f).unwrap())
        })
    });
    g.finish();
}

fn bench_prob(c: &mut Criterion) {
    let mut g = c.benchmark_group("prob");
    let f = Factory::new();
    let gpa_model = indian_gpa::model().compile(&f).unwrap();
    let joint = Event::or(vec![
        Event::eq_real(Transform::id(Var::new("Perfect")), 1.0),
        Event::and(vec![
            Event::eq_str(Transform::id(Var::new("Nationality")), "India"),
            Event::gt(Transform::id(Var::new("GPA")), 3.0),
        ]),
    ]);
    g.bench_function("indian_gpa_joint_query", |b| {
        b.iter(|| black_box(gpa_model.prob(&joint).unwrap()))
    });
    let hmm_model = hmm::hierarchical_hmm(50).compile(&f).unwrap();
    let q = hmm::hidden_state_event(49);
    g.bench_function("hmm_50_marginal", |b| {
        b.iter(|| black_box(hmm_model.prob(&q).unwrap()))
    });
    g.finish();
}

fn bench_condition(c: &mut Criterion) {
    let mut g = c.benchmark_group("condition");
    g.sample_size(20);
    let gpa_model = {
        let f = Factory::new();
        indian_gpa::model().compile(&f).unwrap()
    };
    g.bench_function("indian_gpa_fig2f", |b| {
        let e = indian_gpa::condition_event();
        b.iter(|| {
            // Fresh factory per iteration so memoization does not collapse
            // the measurement to a cache lookup.
            let f = Factory::new();
            black_box(condition(&f, &gpa_model, &e).unwrap())
        })
    });
    g.finish();
}

/// Repeated HMM smoothing through the memoized query engine vs the
/// per-call-memo path — the workload behind the fig3 cached/uncached
/// comparison.
fn bench_query_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_engine");
    g.sample_size(10);
    let n = 20;
    let factory = Factory::new();
    let model = hmm::hierarchical_hmm(n).compile(&factory).unwrap();
    let trace = {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        hmm::simulate_trace(&mut StdRng::seed_from_u64(7), n)
    };
    let posterior = constrain(
        &factory,
        &model,
        &hmm::observation_assignment(&trace.x, &trace.y),
    )
    .unwrap();
    let queries = hmm::smoothing_queries(n);
    g.bench_function("hmm20_smoothing_uncached", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| posterior.prob(q).unwrap())
                .map(black_box)
                .collect::<Vec<f64>>()
        })
    });
    // The engine outlives the iterations, so all passes after the first
    // are answered from its cache — the steady state of a query server.
    let engine = QueryEngine::new(factory, posterior);
    g.bench_function("hmm20_smoothing_cached", |b| {
        b.iter(|| black_box(engine.prob_many(&queries).unwrap()))
    });
    // Cold-cache comparison of the sequential vs the parallel batch path
    // (the fig3 measurement at micro-benchmark granularity). The wide
    // batch adds the pairwise persistence queries.
    let wide: Vec<Event> = {
        let mut b = queries.clone();
        b.extend(hmm::pairwise_queries(n));
        b
    };
    g.bench_function("hmm20_wide_cold_sequential", |b| {
        b.iter(|| {
            engine.clear_caches();
            black_box(engine.logprob_many(&wide).unwrap())
        })
    });
    let pool = sppl_core::Pool::new(4);
    g.bench_function("hmm20_wide_cold_parallel4", |b| {
        b.iter(|| {
            engine.clear_caches();
            black_box(engine.par_logprob_many_in(&pool, &wide).unwrap())
        })
    });
    g.finish();
}

fn bench_fairness(c: &mut Criterion) {
    let mut g = c.benchmark_group("fairness_exact");
    g.sample_size(10);
    for dt in [fairness::DecisionTree::Dt4, fairness::DecisionTree::Dt44] {
        let task = fairness::task(dt, fairness::Population::BayesNet1);
        g.bench_function(task.name.clone(), |b| {
            b.iter(|| {
                let f = Factory::new();
                let spe = task.model.compile(&f).unwrap();
                black_box(fairness::fairness_ratio(&spe).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_translate,
    bench_prob,
    bench_condition,
    bench_query_engine,
    bench_fairness
);
criterion_main!(benches);
