//! Ablation benchmarks for the Sec. 5.1 optimizations: translation and
//! conditioning with deduplication / factorization / memoization
//! selectively disabled (the design-choice measurements DESIGN.md calls
//! out).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sppl_core::spe::{Factory, FactoryOptions};
use sppl_models::{hmm, networks};

fn options(dedup: bool, factorize: bool, memoize: bool) -> FactoryOptions {
    FactoryOptions {
        dedup,
        factorize,
        memoize,
    }
}

fn bench_translation_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("translate_ablation");
    g.sample_size(10);
    let model = networks::heart_disease();
    for (name, opts) in [
        ("all_optimizations", options(true, true, true)),
        ("no_factorization", options(true, false, true)),
        ("no_dedup", options(false, false, true)),
    ] {
        g.bench_function(format!("heart_disease/{name}"), |b| {
            b.iter(|| {
                let f = Factory::with_options(opts);
                black_box(model.compile(&f).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_memoization_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("memoize_ablation");
    g.sample_size(10);
    // A horizon where unmemoized conditioning is painful but finite
    // (tree-expansion ~18k nodes vs ~160 physical at 10 steps).
    let n = 10;
    let model = hmm::hierarchical_hmm(n);
    for (name, memoize) in [("memoized", true), ("unmemoized", false)] {
        g.bench_function(format!("hmm{n}_smoothing/{name}"), |b| {
            b.iter(|| {
                let f = Factory::with_options(options(true, true, memoize));
                let spe = model.compile(&f).unwrap();
                let data = sppl_models::psi_suite::markov_switching_dataset(1, n);
                let post = sppl_core::density::constrain(&f, &spe, &data).unwrap();
                black_box(post.prob(&hmm::hidden_state_event(n - 1)).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_translation_ablation,
    bench_memoization_ablation
);
criterion_main!(benches);
