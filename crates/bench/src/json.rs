//! A minimal JSON object writer for machine-readable benchmark results
//! (`BENCH_*.json`). The build is offline — no serde — and the bench
//! artifacts are flat objects of numbers, strings, and booleans, so a
//! tiny insertion-ordered builder is all that is needed.

use std::io::Write;
use std::path::Path;

/// An insertion-ordered flat JSON object builder.
#[derive(Debug, Default)]
pub struct JsonObject {
    entries: Vec<(String, String)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn push(mut self, key: &str, rendered: String) -> JsonObject {
        self.entries.push((escape(key), rendered));
        self
    }

    /// Adds a string field.
    pub fn str(self, key: &str, value: &str) -> JsonObject {
        let rendered = format!("\"{}\"", escape(value));
        self.push(key, rendered)
    }

    /// Adds a finite float field (non-finite values become `null`, which
    /// plain JSON cannot represent).
    pub fn num(self, key: &str, value: f64) -> JsonObject {
        let rendered = if value.is_finite() {
            // `{:?}` prints shortest-roundtrip floats (`0.1`, not `0.10000..`).
            format!("{value:?}")
        } else {
            "null".to_string()
        };
        self.push(key, rendered)
    }

    /// Adds an integer field.
    pub fn int(self, key: &str, value: u64) -> JsonObject {
        self.push(key, value.to_string())
    }

    /// Adds a boolean field.
    pub fn bool(self, key: &str, value: bool) -> JsonObject {
        self.push(key, value.to_string())
    }

    /// Renders the object as a pretty-printed JSON string.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            out.push_str(&format!("  \"{k}\": {v}"));
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push('}');
        out
    }

    /// Writes the rendered object (plus trailing newline) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.render())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_object() {
        let j = JsonObject::new()
            .str("bench", "fig3_hmm")
            .int("threads", 4)
            .num("seconds", 0.125)
            .bool("ok", true);
        assert_eq!(
            j.render(),
            "{\n  \"bench\": \"fig3_hmm\",\n  \"threads\": 4,\n  \"seconds\": 0.125,\n  \"ok\": true\n}"
        );
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        let j = JsonObject::new()
            .str("s", "a\"b\\c\nd")
            .num("inf", f64::INFINITY)
            .num("nan", f64::NAN);
        let r = j.render();
        assert!(r.contains("a\\\"b\\\\c\\nd"));
        assert!(r.contains("\"inf\": null"));
        assert!(r.contains("\"nan\": null"));
    }

    #[test]
    fn floats_roundtrip_shortest() {
        let r = JsonObject::new().num("x", 0.1).render();
        assert!(r.contains("\"x\": 0.1\n"), "got {r}");
    }
}
