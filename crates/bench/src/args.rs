//! Shared flag parsing for the bench binaries that support smoke mode
//! and machine-readable output (`fig3_hmm`, `fig8_rare_events`,
//! `arena_bench`, `condition_bench`, `serve_bench`). Binaries with extra
//! flags layer them on via [`BenchArgs::parse_with`].

use std::path::PathBuf;
use std::sync::Arc;

use sppl_core::engine::default_threads;
use sppl_core::{Pool, SharedCache};

/// Flags common to the JSON-emitting bench binaries.
pub struct BenchArgs {
    /// `--test`: smoke mode — smaller workloads for CI.
    pub test: bool,
    /// `--json`: additionally write a `BENCH_*.json` artifact.
    pub json: bool,
    /// `--threads N`: parallel-path thread count (defaults to
    /// [`default_threads`]).
    pub threads: usize,
    /// `--cache-snapshot PATH`: persist the run's [`SharedCache`] to
    /// `PATH` on exit, loading it first when the file already exists —
    /// the warm-restart demonstration (run the binary twice with the
    /// same path; the second process must be pure shared-cache hits).
    pub cache_snapshot: Option<PathBuf>,
}

impl BenchArgs {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics (with a usage hint) on an unknown flag or a malformed
    /// `--threads` value — these are developer-facing binaries.
    pub fn parse() -> BenchArgs {
        BenchArgs::parse_with(|flag, _| {
            panic!(
                "unknown flag {flag} (expected --test, --json, --threads N, \
                 --cache-snapshot PATH)"
            )
        })
    }

    /// Like [`parse`](BenchArgs::parse), but flags this parser does not
    /// recognize are offered to `extra(flag, next_value)` — the hook a
    /// binary with its own flags (e.g. `serve_bench`) uses to extend the
    /// shared set. `next_value` pulls the flag's value off the argument
    /// list; the hook should panic on flags it does not recognize either.
    pub fn parse_with(
        mut extra: impl FnMut(&str, &mut dyn FnMut() -> Option<String>),
    ) -> BenchArgs {
        let mut args = BenchArgs {
            test: false,
            json: false,
            threads: default_threads(),
            cache_snapshot: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--test" => args.test = true,
                "--json" => args.json = true,
                "--threads" => {
                    let n = it
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .expect("--threads takes a positive integer");
                    assert!(n >= 1, "--threads takes a positive integer");
                    args.threads = n;
                }
                "--cache-snapshot" => {
                    let path = it.next().expect("--cache-snapshot takes a file path");
                    args.cache_snapshot = Some(PathBuf::from(path));
                }
                other => extra(other, &mut || it.next()),
            }
        }
        args
    }

    /// A [`SharedCache`] for the run, warm-loaded from `--cache-snapshot`
    /// when the file exists. Returns the cache and the number of entries
    /// loaded (0 on a cold start; a rejected snapshot — wrong version or
    /// corrupt — prints a warning and starts cold, per the cache's
    /// never-wrong-answers contract).
    pub fn shared_cache(&self, capacity: usize) -> (Arc<SharedCache>, usize) {
        let cache = Arc::new(SharedCache::new(capacity));
        let mut loaded = 0;
        if let Some(path) = &self.cache_snapshot {
            if path.exists() {
                match cache.load_snapshot(path) {
                    Ok(n) => loaded = n,
                    Err(e) => eprintln!("warning: starting cold — {e}"),
                }
            }
        }
        (cache, loaded)
    }

    /// Persists `cache` to the `--cache-snapshot` path, if one was given.
    /// Returns the number of entries written.
    pub fn save_cache(&self, cache: &SharedCache) -> usize {
        match &self.cache_snapshot {
            Some(path) => cache
                .save_snapshot(path)
                .unwrap_or_else(|e| panic!("cannot save cache snapshot: {e}")),
            None => 0,
        }
    }

    /// `"test"` or `"full"` — the mode tag written into the JSON
    /// artifacts.
    pub fn mode(&self) -> &'static str {
        if self.test {
            "test"
        } else {
            "full"
        }
    }

    /// A scoped pool sized by `--threads`.
    pub fn pool(&self) -> Pool {
        Pool::new(self.threads.min(u32::MAX as usize) as u32)
    }
}
