//! Benchmark harness for the paper's evaluation (Sec. 6).
//!
//! Each table and figure has a binary that regenerates it:
//!
//! | target | artifact |
//! |---|---|
//! | `table1_compression` | Table 1 (SPE size with/without optimizations) |
//! | `table2_fairness` | Table 2 (fairness runtimes & judgments) |
//! | `table3_variance` | Table 3 (runtime mean/std across datasets) |
//! | `table4_psi` | Table 4 (stage-wise runtime vs the PSI substitute) |
//! | `fig2_indian_gpa` | Fig. 2 (prior/posterior marginals & CDFs) |
//! | `fig3_hmm` | Fig. 3 (smoothing + expression growth) |
//! | `fig4_transform` | Fig. 4 (transform conditioning) |
//! | `fig8_rare_events` | Fig. 8 (exact vs rejection-sampling estimates) |
//!
//! Run them all with `cargo run --release -p sppl-bench --bin <target>`;
//! Criterion micro-benchmarks live under `benches/`.

use std::time::Instant;

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// Renders a table with fixed-width columns.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: vec![],
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (w, c) in widths.iter().zip(cells) {
                s.push_str(&format!("{c:<width$}  ", width = w));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// True when two result series agree bit for bit (the parallel≡sequential
/// check the fig bins assert and record in their JSON artifacts).
pub fn bits_match(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Formats seconds compactly (`12 ms`, `3.42 s`).
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1} ms", s * 1000.0)
    } else {
        format!("{s:.2} s")
    }
}

/// Formats a large count in scientific notation when needed.
pub fn fmt_count(x: f64) -> String {
    if x < 1e6 {
        format!("{x:.0}")
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
        assert_eq!(fmt_secs(3.4), "3.40 s");
        assert_eq!(fmt_count(1234.0), "1234");
        assert!(fmt_count(2.9e16).contains('e'));
    }
}

pub mod args;
pub mod json;
pub mod suite;
