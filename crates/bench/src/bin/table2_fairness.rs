//! Table 2: runtime and judgments for the fifteen fairness verification
//! tasks, comparing exact SPPL inference against the FairSquare-style
//! volume verifier and the VeriFair-style adaptive sampler.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl_baseline::fairsquare::VolumeVerifier;
use sppl_baseline::verifair::AdaptiveSampler;
use sppl_bench::{fmt_secs, timed, Table};
use sppl_core::Factory;
use sppl_models::fairness::{self, all_tasks};

fn main() {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut table = Table::new([
        "Task",
        "LoC",
        "Judgment",
        "FairSquare*",
        "VeriFair*",
        "SPPL",
        "vs FS",
        "vs VF",
    ]);
    println!("Table 2: fairness verification (15 decision tree tasks)\n");
    for task in all_tasks() {
        // SPPL: translate + exact Eq. (7) ratio.
        let factory = Factory::new();
        let (outcome, sppl_s) = timed(|| {
            let spe = task.model.compile(&factory).expect("task compiles");
            let ratio = fairness::fairness_ratio(&spe).expect("exact ratio");
            (spe, ratio)
        });
        let (spe, ratio) = outcome;
        let fair = fairness::is_fair(ratio, task.epsilon);

        // FairSquare substitute.
        let fs = VolumeVerifier::default()
            .verify(&spe, &task.tree.spec())
            .expect("volume verifier");
        // VeriFair substitute.
        let vf = AdaptiveSampler::default().verify(&spe, &mut rng);

        let agree = |b: bool| if b == fair { "" } else { " (!)" };
        table.row([
            task.name.clone(),
            task.model.lines_of_code().to_string(),
            (if fair { "Fair" } else { "Unfair" }).to_string(),
            format!("{}{}", fmt_secs(fs.seconds), agree(fs.fair)),
            format!("{}{}", fmt_secs(vf.seconds), agree(vf.fair)),
            fmt_secs(sppl_s),
            format!("{:.1}x", fs.seconds / sppl_s),
            format!("{:.1}x", vf.seconds / sppl_s),
        ]);
    }
    table.print();
    println!("\n(!) marks a baseline judgment disagreeing with the exact one.");
    println!("*behavioural substitutes for the original tools; see DESIGN.md §2.");
}
