//! Parallel symbolic conditioning vs the sequential walk, on the two
//! regimes the fan-out targets: a **wide mixture** (many sum children,
//! one conditioning pass fans out per-child) and a **deep conditioning
//! chain** over a moderately wide mixture (the chain itself stays
//! sequential — each posterior feeds the next step — but every step
//! fans out internally). Answers must be bit-identical across every
//! thread count (`bits_match` asserted); the speedup column is the only
//! thing parallelism is allowed to change.
//!
//! Each measurement builds a **fresh factory**: the cond cache would
//! otherwise answer the second run instantly and time nothing.
//!
//! Flags:
//!
//! * `--test` — smoke mode: 200-component mixture, 60-step chain (CI).
//! * `--json` — additionally write `BENCH_condition.json`.
//! * `--threads N` — top rung of the thread ladder (default:
//!   `SPPL_THREADS` or the machine's available parallelism); the ladder
//!   always includes 1 and 2.

use std::sync::Arc;

use sppl_bench::args::BenchArgs;
use sppl_bench::json::JsonObject;
use sppl_bench::{bits_match, fmt_secs, timed, Table};
use sppl_core::{condition, par_condition_in, Event, Factory, Model, Pool, Spe, Transform, Var};
use sppl_dists::{Cdf, DistReal, Distribution};
use sppl_sets::Interval;

fn normal_leaf(f: &Factory, name: &str, mu: f64) -> Spe {
    f.leaf(
        Var::new(name),
        Distribution::Real(DistReal::new(Cdf::normal(mu, 1.0), Interval::all()).unwrap()),
    )
}

/// An `n`-component mixture of two-variable products with distinct
/// means (distinct, or dedup would collapse the components).
fn wide_mixture(f: &Factory, n: usize) -> Spe {
    let w = (1.0 / n as f64).ln();
    let comps: Vec<(Spe, f64)> = (0..n)
        .map(|i| {
            let mu = -4.0 + 8.0 * i as f64 / n as f64;
            let c = f
                .product(vec![normal_leaf(f, "X", mu), normal_leaf(f, "Y", -mu)])
                .unwrap();
            (c, w)
        })
        .collect();
    f.sum(comps).unwrap()
}

/// A disjunction so conditioning walks the clause (DNF) path, not just
/// a single truncation.
fn evidence() -> Event {
    let x = Transform::id(Var::new("X"));
    let y = Transform::id(Var::new("Y"));
    Event::or(vec![
        Event::le(x.clone(), 0.25),
        Event::and(vec![Event::gt(x, -1.0), Event::gt(y, 1.5)]),
    ])
}

/// Posterior probes answered after every run; their bits are the
/// equality witness.
fn probes() -> Vec<Event> {
    let x = Transform::id(Var::new("X"));
    let y = Transform::id(Var::new("Y"));
    vec![
        Event::le(x.clone(), 0.0),
        Event::gt(y.clone(), 0.0),
        Event::and(vec![Event::le(x.clone(), 1.0), Event::le(y.clone(), 1.0)]),
        Event::or(vec![Event::gt(x, 2.0), Event::le(y, -2.0)]),
    ]
}

fn probe_answers(f: &Factory, post: &Spe) -> Vec<f64> {
    probes()
        .iter()
        .map(|q| f.logprob(post, q).expect("probe"))
        .collect()
}

/// A slowly tightening alternating chain: step `k` truncates `X` (even)
/// or `Y` (odd) a little further, so every mixture component survives
/// every step and each step's sum stays wide enough to fan out.
fn chain_events(depth: usize) -> Vec<Event> {
    let x = Transform::id(Var::new("X"));
    let y = Transform::id(Var::new("Y"));
    (0..depth)
        .map(|k| {
            let shrink = 2.0 * k as f64 / depth as f64;
            if k % 2 == 0 {
                Event::le(x.clone(), 4.0 - shrink)
            } else {
                Event::gt(y.clone(), -4.0 + shrink)
            }
        })
        .collect()
}

struct Run {
    seq_s: f64,
    /// `(threads, seconds)` per ladder rung.
    par_s: Vec<(u32, f64)>,
    bits: bool,
}

impl Run {
    fn speedup_at_max(&self) -> f64 {
        self.seq_s / self.par_s.last().expect("ladder non-empty").1
    }
}

/// Conditions a fresh `components`-wide mixture once sequentially and
/// once per ladder rung, asserting bit-identical posterior answers.
fn measure_mixture(components: usize, ladder: &[u32]) -> Run {
    let reference = {
        let f = Factory::new();
        let m = wide_mixture(&f, components);
        let (post, seq_s) = timed(|| condition(&f, &m, &evidence()).expect("conditions"));
        (probe_answers(&f, &post), seq_s)
    };
    let mut par_s = Vec::new();
    let mut bits = true;
    for &threads in ladder {
        let pool = Pool::new(threads);
        let f = Factory::new();
        let m = wide_mixture(&f, components);
        let (post, s) = timed(|| par_condition_in(&f, &m, &evidence(), &pool).expect("conditions"));
        bits &= bits_match(&reference.0, &probe_answers(&f, &post));
        par_s.push((threads, s));
    }
    assert!(bits, "parallel conditioning must be bit-identical");
    Run {
        seq_s: reference.1,
        par_s,
        bits,
    }
}

/// Runs a `depth`-step conditioning chain over a `width`-component
/// mixture; the chain is sequential, each step fans out internally.
fn measure_chain(width: usize, depth: usize, ladder: &[u32]) -> Run {
    let events = chain_events(depth);
    let session = |_: ()| {
        let f = Arc::new(Factory::new());
        let m = wide_mixture(&f, width);
        Model::new(f, m)
    };
    let reference = {
        let model = session(());
        let (post, seq_s) = timed(|| model.condition_chain(&events).expect("chains"));
        (probe_answers(model.factory(), post.root()), seq_s)
    };
    let mut par_s = Vec::new();
    let mut bits = true;
    for &threads in ladder {
        let pool = Pool::new(threads);
        let model = session(());
        let (post, s) = timed(|| {
            model
                .par_condition_chain_in(&pool, &events)
                .expect("chains")
        });
        bits &= bits_match(&reference.0, &probe_answers(model.factory(), post.root()));
        par_s.push((threads, s));
    }
    assert!(bits, "parallel chain must be bit-identical");
    Run {
        seq_s: reference.1,
        par_s,
        bits,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let top = (args.threads as u32).max(1);
    let mut ladder: Vec<u32> = vec![1, 2, top];
    ladder.sort_unstable();
    ladder.dedup();

    let components = if args.test { 200 } else { 1000 };
    let (chain_width, chain_depth) = if args.test { (32, 60) } else { (100, 500) };

    let mixture = measure_mixture(components, &ladder);
    let chain = measure_chain(chain_width, chain_depth, &ladder);

    let available = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut table = Table::new(["Workload", "Size", "Seq", "Par (top)", "Speedup", "Bits"]);
    for (name, size, run) in [
        ("wide_mixture", format!("{components} components"), &mixture),
        (
            "deep_chain",
            format!("{chain_depth} steps x {chain_width} wide"),
            &chain,
        ),
    ] {
        table.row([
            name.to_string(),
            size,
            fmt_secs(run.seq_s),
            fmt_secs(run.par_s.last().expect("ladder").1),
            format!("{:.2}x", run.speedup_at_max()),
            if run.bits { "identical" } else { "DIVERGED" }.to_string(),
        ]);
    }
    println!("parallel symbolic conditioning vs sequential (bit-identity asserted)\n");
    table.print();
    println!("\nthread ladder: {ladder:?}; {available} hardware thread(s) available");
    if available < ladder.last().copied().unwrap_or(1) as usize {
        println!(
            "note: ladder exceeds hardware parallelism — speedups are \
             bounded by the {available} available core(s); rerun on a \
             multi-core box for the scaling numbers"
        );
    }

    if args.json {
        let mut json = JsonObject::new()
            .str("bench", "condition")
            .str("mode", args.mode())
            .int("threads_available", available as u64)
            .int("mixture_components", components as u64)
            .int("chain_depth", chain_depth as u64)
            .int("chain_width", chain_width as u64)
            .bool("bits_match", mixture.bits && chain.bits)
            .num("mixture_seq_s", mixture.seq_s)
            .num("chain_seq_s", chain.seq_s);
        for (threads, s) in &mixture.par_s {
            json = json.num(&format!("mixture_par{threads}_s"), *s);
        }
        for (threads, s) in &chain.par_s {
            json = json.num(&format!("chain_par{threads}_s"), *s);
        }
        json = json
            .num("mixture_speedup_at_max", mixture.speedup_at_max())
            .num("chain_speedup_at_max", chain.speedup_at_max());
        if available < ladder.last().copied().unwrap_or(1) as usize {
            json = json.str(
                "caveat",
                "thread ladder exceeds hardware parallelism on this box; \
                 speedup is core-bound, bit-identity is the asserted result",
            );
        }
        json.write("BENCH_condition.json")
            .expect("write BENCH_condition.json");
        println!("\nwrote BENCH_condition.json");
    }
}
