//! Table 3: distribution of end-to-end inference runtime across datasets
//! for four benchmarks — SPPL's runtime is low-variance (it depends only
//! on the query pattern), while the enumerative single-stage engine's
//! runtime varies with the data and blows up with discrete structure.

use sppl_baseline::enumerative::{EnumOutcome, EnumerativeEngine};
use sppl_bench::suite::{benchmarks, run_enumerative, run_sppl};
use sppl_bench::{fmt_secs, mean_std, Table};

fn main() {
    let keep = [
        "Digit Recognition",
        "Markov Switching 3",
        "Student Interviews 2",
        "Clinical Trial",
    ];
    let engine = EnumerativeEngine::default();
    let mut table = Table::new([
        "Benchmark",
        "SPPL mean/std (per dataset)",
        "Enum* mean/std (per dataset)",
    ]);
    println!("Table 3: runtime distribution across datasets\n");
    for bench in benchmarks() {
        if !keep.contains(&bench.name.as_str()) {
            continue;
        }
        let sppl = run_sppl(&bench);
        let per_dataset: Vec<f64> = sppl
            .condition_s
            .iter()
            .zip(&sppl.query_s)
            .map(|(c, q)| c + q)
            .collect();
        let (sm, ss) = mean_std(&per_dataset);

        let enum_runs = run_enumerative(&bench, &engine);
        let times: Vec<f64> = enum_runs
            .iter()
            .map(|r| match r {
                EnumOutcome::Solved { seconds, .. }
                | EnumOutcome::ResourceExhausted { seconds, .. } => *seconds,
            })
            .collect();
        let exhausted = enum_runs
            .iter()
            .any(|r| matches!(r, EnumOutcome::ResourceExhausted { .. }));
        let (em, es) = mean_std(&times);
        let enum_cell = if exhausted {
            format!("{} / {} (o/m)", fmt_secs(em), fmt_secs(es))
        } else {
            format!("{} / {}", fmt_secs(em), fmt_secs(es))
        };
        table.row([
            bench.name.clone(),
            format!("{} / {}", fmt_secs(sm), fmt_secs(ss)),
            enum_cell,
        ]);
    }
    table.print();
    println!("\n*single-stage flat-enumeration engine (PSI substitute).");
}
