//! Arena evaluator vs the tree walker on the paper's batch workloads:
//! the Fig. 3 hierarchical-HMM smoothing posterior and the Fig. 8
//! rare-event chain network. Each workload compiles the session's model
//! into an [`ArenaModel`](sppl_core::ArenaModel) and answers the same
//! cold batch through both paths; the answers must be bit-identical
//! (that is the arena's contract, enforced here with `bits_match`), and
//! the table reports per-event latency plus the arena's speedup over
//! the cold sequential and cold parallel tree walks.
//!
//! Flags:
//!
//! * `--test` — smoke mode: smaller horizon / shorter chain (CI).
//! * `--json` — additionally write machine-readable results to
//!   `BENCH_arena.json` in the working directory.
//! * `--threads N` — thread count for the parallel tree-walk baseline
//!   (default: `SPPL_THREADS` or the machine's available parallelism).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl_bench::args::BenchArgs;
use sppl_bench::json::JsonObject;
use sppl_bench::{bits_match, fmt_secs, timed, Table};
use sppl_core::{Event, Model, Pool};
use sppl_models::{hmm, rare_event};

/// Measurements for one workload, all over the same cold batch.
struct Run {
    name: &'static str,
    events: usize,
    nodes: usize,
    compile_s: f64,
    tree_cold_s: f64,
    par_cold_s: f64,
    arena_s: f64,
}

impl Run {
    fn per_event_ns(&self, total_s: f64) -> f64 {
        total_s * 1e9 / self.events as f64
    }
}

/// Answers `batch` through the cold tree walker (sequential and
/// parallel) and through a freshly compiled arena, asserting bit
/// parity between all three.
fn measure(name: &'static str, model: &Model, batch: &[Event], pool: &Pool) -> Run {
    // Touch every code path once, then measure from cold caches; the
    // arena takes no caches at all, so its pass is always "cold".
    model.logprob_many(batch).expect("warmup");
    model.clear_caches();
    let (tree, tree_cold_s) = timed(|| model.logprob_many(batch).expect("tree batch"));
    model.clear_caches();
    let (par, par_cold_s) = timed(|| {
        model
            .par_logprob_many_in(pool, batch)
            .expect("parallel tree batch")
    });
    assert!(
        bits_match(&tree, &par),
        "parallel walk must be bit-identical"
    );

    let (arena, compile_s) = timed(|| model.compile_arena());
    let (fast, arena_s) = timed(|| arena.logprob_many(batch).expect("arena batch"));
    assert!(
        bits_match(&tree, &fast),
        "{name}: arena must answer bit-identically to the tree walker"
    );

    Run {
        name,
        events: batch.len(),
        nodes: arena.node_count(),
        compile_s,
        tree_cold_s,
        par_cold_s,
        arena_s,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let pool = args.pool();

    // Fig. 3 workload: the smoothing + pairwise-persistence batch
    // against the HMM posterior (conditioning returns a Model, so the
    // posterior compiles to its own digest-keyed arena).
    let n = if args.test { 32 } else { 100 };
    let model = hmm::hierarchical_hmm(n).session().expect("compiles");
    let mut rng = StdRng::seed_from_u64(33);
    let trace = hmm::simulate_trace(&mut rng, n);
    let posterior = model
        .constrain(&hmm::observation_assignment(&trace.x, &trace.y))
        .expect("positive density");
    let batch: Vec<Event> = {
        let mut b = hmm::smoothing_queries(n);
        b.extend(hmm::pairwise_queries(n));
        b
    };
    let fig3 = measure("fig3_hmm_posterior", &posterior, &batch, &pool);

    // Fig. 8 workload: every prefix probability P[O[0..k] all 1] on the
    // chain network, through the prior model itself.
    let chain_len = if args.test { 12 } else { 20 };
    let chain = rare_event::chain_network(chain_len)
        .session()
        .expect("compiles");
    let prefixes: Vec<Event> = (1..=chain_len).map(rare_event::all_ones_event).collect();
    let fig8 = measure("fig8_chain", &chain, &prefixes, &pool);

    let mut table = Table::new([
        "Workload",
        "Events",
        "Nodes",
        "Compile",
        "Tree cold",
        "Par cold",
        "Arena",
        "ns/event (tree)",
        "ns/event (arena)",
        "Speedup",
    ]);
    for run in [&fig3, &fig8] {
        table.row([
            run.name.to_string(),
            run.events.to_string(),
            run.nodes.to_string(),
            fmt_secs(run.compile_s),
            fmt_secs(run.tree_cold_s),
            fmt_secs(run.par_cold_s),
            fmt_secs(run.arena_s),
            format!("{:.0}", run.per_event_ns(run.tree_cold_s)),
            format!("{:.0}", run.per_event_ns(run.arena_s)),
            format!("{:.2}x", run.tree_cold_s / run.arena_s),
        ]);
    }
    println!("arena evaluator vs cold tree walker (bit-identical answers asserted)\n");
    table.print();
    println!(
        "\nparallel tree walk used {} threads; the arena pass is single-threaded",
        pool.thread_count()
    );

    if args.json {
        let mut json = JsonObject::new()
            .str("bench", "arena")
            .str("mode", args.mode())
            .int("threads", pool.thread_count() as u64)
            .bool("bits_identical", true);
        for run in [&fig3, &fig8] {
            let k = run.name;
            json = json
                .int(&format!("{k}_events"), run.events as u64)
                .int(&format!("{k}_nodes"), run.nodes as u64)
                .num(&format!("{k}_compile_s"), run.compile_s)
                .num(&format!("{k}_tree_cold_s"), run.tree_cold_s)
                .num(&format!("{k}_par_cold_s"), run.par_cold_s)
                .num(&format!("{k}_arena_s"), run.arena_s)
                .num(
                    &format!("{k}_tree_ns_per_event"),
                    run.per_event_ns(run.tree_cold_s),
                )
                .num(
                    &format!("{k}_arena_ns_per_event"),
                    run.per_event_ns(run.arena_s),
                )
                .num(&format!("{k}_speedup"), run.tree_cold_s / run.arena_s);
        }
        json.write("BENCH_arena.json")
            .expect("write BENCH_arena.json");
        println!("\nwrote BENCH_arena.json");
    }
}
