//! Fig. 8: exact rare-event probabilities vs rejection-sampling
//! trajectories, answered through the session-first
//! [`Model`](sppl_core::Model) API.
//!
//! Flags:
//!
//! * `--test` — smoke mode: shorter chain and far fewer sampler draws
//!   (CI).
//! * `--json` — additionally write machine-readable results to
//!   `BENCH_fig8.json` in the working directory.
//! * `--threads N` — thread count for the parallel batch (default:
//!   `SPPL_THREADS` or the machine's available parallelism).
//! * `--cache-snapshot PATH` — load a `SharedCache` snapshot from `PATH`
//!   when it exists and save one on exit (warm restart across
//!   processes; pure hits asserted when a snapshot was loaded).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl_baseline::sampler::RejectionEstimator;
use sppl_bench::args::BenchArgs;
use sppl_bench::json::JsonObject;
use sppl_bench::{bits_match, fmt_secs, timed};
use sppl_core::event::Event;
use sppl_core::SharedCache;
use sppl_models::rare_event;

fn main() {
    let args = BenchArgs::parse();
    let chain_len = if args.test { 12 } else { 20 };
    let max_samples = if args.test { 20_000 } else { 400_000 };

    // The main session runs *without* the shared cache so the cold
    // numbers below measure the evaluator and engine cache alone; the
    // shared cache gets its own session (and numbers) afterwards.
    // Bypasses the process-global compile cache: `translate_s` in the
    // JSON artifact means *translation*, not a cache hit.
    let (model, translate_t) = timed(|| {
        sppl_analyze::compile_model_uncached(&rare_event::chain_network(chain_len).source)
            .expect("compiles")
    });
    println!("chain network translated in {}\n", fmt_secs(translate_t));

    // Batched exact answers through the session — every prefix
    // probability P[O[0..k] all 1] for k = 1..=chain_len: cold (first
    // pass, populating the cache), cold again through the parallel path,
    // then warm (repeat of the same batch).
    let events: Vec<Event> = (1..=chain_len).map(rare_event::all_ones_event).collect();
    let (cold, cold_t) = timed(|| model.logprob_many(&events).expect("exact"));
    let pool = args.pool();
    model.clear_caches();
    let (par_cold, par_cold_t) =
        timed(|| model.par_logprob_many_in(&pool, &events).expect("exact"));
    let results_match = bits_match(&cold, &par_cold);
    assert!(results_match, "parallel batch must be bit-identical");
    let (warm, warm_t) = timed(|| model.logprob_many(&events).expect("exact"));
    assert_eq!(cold, warm, "warm batch must be bit-identical");
    let stats = model.stats();
    println!(
        "batched exact answers over {} prefixes: cold {} vs parallel-cold {} ({} threads) \
         vs warm {} ({} hits / {} misses / {} entries)\n",
        events.len(),
        fmt_secs(cold_t),
        fmt_secs(par_cold_t),
        pool.thread_count(),
        fmt_secs(warm_t),
        stats.hits,
        stats.misses,
        stats.entries,
    );

    let mut rng = StdRng::seed_from_u64(12345);
    let prefixes: Vec<usize> = rare_event::figure8_prefixes()
        .into_iter()
        .filter(|&k| k <= chain_len)
        .collect();
    for &k in &prefixes {
        let event = rare_event::all_ones_event(k);
        let lp = cold[k - 1];
        println!("== event: O[0..{k}] all 1 — exact log p = {lp:.2} ==");
        let estimator = RejectionEstimator {
            max_samples,
            checkpoint_every: max_samples / 4,
        };
        for p in estimator.estimate(model.root(), &event, &mut rng) {
            let log_est = if p.estimate > 0.0 {
                format!("{:.2}", p.estimate.ln())
            } else {
                "-inf".into()
            };
            println!(
                "  sampler n={:>7} hits={:>4} log_est={log_est:>8} t={}",
                p.samples,
                p.hits,
                fmt_secs(p.seconds)
            );
        }
    }
    println!("\nExact answers are O(ms) and deterministic; sampler estimates fluctuate");
    println!("and may report zero hits long past the exact answer's availability.");

    // Cross-process persistence (see fig3_hmm): a separate session over
    // the run's SharedCache fills it on a cold start; on a
    // snapshot-loaded run every lookup must be a hit.
    let (cache, snapshot_loaded) = args.shared_cache(1 << 16);
    if snapshot_loaded > 0 {
        println!("\nwarm restart: loaded {snapshot_loaded} shared-cache entries from snapshot");
    }
    let shared_session = rare_event::chain_network(chain_len)
        .session()
        .expect("compiles")
        .with_shared_cache(Arc::clone(&cache));
    let (shared_answers, shared_fill_t) =
        timed(|| shared_session.logprob_many(&events).expect("batch"));
    assert!(
        bits_match(&cold, &shared_answers),
        "shared-cache session must agree bit-for-bit"
    );
    let shared = cache.stats();
    if snapshot_loaded > 0 {
        assert_eq!(
            shared.misses, 0,
            "snapshot-warm run must be pure shared-cache hits ({shared:?}) — \
             run the writer and reader with the same mode/size flags"
        );
    }
    let snapshot_saved = args.save_cache(&cache);
    println!(
        "shared cache: batch in {} — {} hits / {} misses / {} entries \
         (loaded {snapshot_loaded}, saved {snapshot_saved})",
        fmt_secs(shared_fill_t),
        shared.hits,
        shared.misses,
        shared.entries,
    );

    // Warm-restart demonstration, in-process (see fig3_hmm): a fresh
    // session over a fresh cache restored from the snapshot replays the
    // batch as pure hits, bit-identical to the cold pass.
    let mut warm_restart_batch_s = 0.0;
    let mut warm_restart_pure_hits = false;
    if let Some(path) = &args.cache_snapshot {
        let restored = Arc::new(SharedCache::new(1 << 16));
        let reloaded = restored.load_snapshot(path).expect("reload own snapshot");
        let session = rare_event::chain_network(chain_len)
            .session()
            .expect("compiles")
            .with_shared_cache(Arc::clone(&restored));
        let (replay, t) = timed(|| session.logprob_many(&events).expect("warm batch"));
        warm_restart_batch_s = t;
        let rs = restored.stats();
        assert_eq!(
            rs.misses, 0,
            "restored snapshot must answer the batch without the evaluator ({rs:?})"
        );
        assert!(bits_match(&cold, &replay), "replay must be bit-identical");
        warm_restart_pure_hits = true;
        println!(
            "warm restart replay: {} events in {} from {reloaded} restored entries \
             (cold pass was {}) — {:.0}x",
            events.len(),
            fmt_secs(t),
            fmt_secs(cold_t),
            cold_t / t,
        );
    }

    if args.json {
        let json = JsonObject::new()
            .str("bench", "fig8_rare_events")
            .str("mode", args.mode())
            .int("chain_len", chain_len as u64)
            .int("batch_size", events.len() as u64)
            .int("threads", u64::from(pool.thread_count()))
            .num("translate_s", translate_t)
            .num("seq_cold_s", cold_t)
            .num("par_cold_s", par_cold_t)
            .num("par_speedup", cold_t / par_cold_t)
            .num("warm_s", warm_t)
            .num("engine_hit_rate", stats.hit_rate())
            .bool("par_matches_seq_bitwise", results_match)
            .int("shared_hits", shared.hits)
            .int("shared_misses", shared.misses)
            .int("shared_entries", shared.entries as u64)
            .num("shared_batch_s", shared_fill_t)
            .int("snapshot_loaded", snapshot_loaded as u64)
            .int("snapshot_saved", snapshot_saved as u64)
            .num("warm_restart_batch_s", warm_restart_batch_s)
            .num(
                "warm_restart_speedup",
                if warm_restart_batch_s > 0.0 {
                    cold_t / warm_restart_batch_s
                } else {
                    0.0
                },
            )
            .bool("warm_restart_pure_hits", warm_restart_pure_hits);
        json.write("BENCH_fig8.json")
            .expect("write BENCH_fig8.json");
        println!("\nwrote BENCH_fig8.json");
    }
}
