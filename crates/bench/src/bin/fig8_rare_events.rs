//! Fig. 8: exact rare-event probabilities vs rejection-sampling
//! trajectories.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl_baseline::sampler::RejectionEstimator;
use sppl_bench::{fmt_secs, timed};
use sppl_core::Factory;
use sppl_models::rare_event;

fn main() {
    let factory = Factory::new();
    let (model, t) = timed(|| {
        rare_event::chain_network(20)
            .compile(&factory)
            .expect("compiles")
    });
    println!("chain network translated in {}\n", fmt_secs(t));
    let mut rng = StdRng::seed_from_u64(12345);
    for k in rare_event::figure8_prefixes() {
        let event = rare_event::all_ones_event(k);
        let (lp, es) = timed(|| model.logprob(&event).expect("exact"));
        println!(
            "== event: O[0..{k}] all 1 — exact log p = {lp:.2} in {} ==",
            fmt_secs(es)
        );
        let estimator = RejectionEstimator {
            max_samples: 400_000,
            checkpoint_every: 100_000,
        };
        for p in estimator.estimate(&model, &event, &mut rng) {
            let log_est = if p.estimate > 0.0 {
                format!("{:.2}", p.estimate.ln())
            } else {
                "-inf".into()
            };
            println!(
                "  sampler n={:>7} hits={:>4} log_est={log_est:>8} t={}",
                p.samples,
                p.hits,
                fmt_secs(p.seconds)
            );
        }
    }
    println!("\nExact answers are O(ms) and deterministic; sampler estimates fluctuate");
    println!("and may report zero hits long past the exact answer's availability.");
}
