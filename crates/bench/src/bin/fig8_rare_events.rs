//! Fig. 8: exact rare-event probabilities vs rejection-sampling
//! trajectories, answered through the session-first
//! [`Model`](sppl_core::Model) API.
//!
//! Flags:
//!
//! * `--test` — smoke mode: shorter chain and far fewer sampler draws
//!   (CI).
//! * `--json` — additionally write machine-readable results to
//!   `BENCH_fig8.json` in the working directory.
//! * `--threads N` — thread count for the parallel batch (default:
//!   `SPPL_THREADS` or the machine's available parallelism).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl_baseline::sampler::RejectionEstimator;
use sppl_bench::cli::BenchArgs;
use sppl_bench::json::JsonObject;
use sppl_bench::{bits_match, fmt_secs, timed};
use sppl_core::event::Event;
use sppl_models::rare_event;

fn main() {
    let args = BenchArgs::parse();
    let chain_len = if args.test { 12 } else { 20 };
    let max_samples = if args.test { 20_000 } else { 400_000 };

    let (model, translate_t) = timed(|| {
        rare_event::chain_network(chain_len)
            .session()
            .expect("compiles")
    });
    println!("chain network translated in {}\n", fmt_secs(translate_t));

    // Batched exact answers through the session — every prefix
    // probability P[O[0..k] all 1] for k = 1..=chain_len: cold (first
    // pass, populating the cache), cold again through the parallel path,
    // then warm (repeat of the same batch).
    let events: Vec<Event> = (1..=chain_len).map(rare_event::all_ones_event).collect();
    let (cold, cold_t) = timed(|| model.logprob_many(&events).expect("exact"));
    let pool = args.pool();
    model.clear_caches();
    let (par_cold, par_cold_t) =
        timed(|| model.par_logprob_many_in(&pool, &events).expect("exact"));
    let results_match = bits_match(&cold, &par_cold);
    assert!(results_match, "parallel batch must be bit-identical");
    let (warm, warm_t) = timed(|| model.logprob_many(&events).expect("exact"));
    assert_eq!(cold, warm, "warm batch must be bit-identical");
    let stats = model.stats();
    println!(
        "batched exact answers over {} prefixes: cold {} vs parallel-cold {} ({} threads) \
         vs warm {} ({} hits / {} misses / {} entries)\n",
        events.len(),
        fmt_secs(cold_t),
        fmt_secs(par_cold_t),
        pool.thread_count(),
        fmt_secs(warm_t),
        stats.hits,
        stats.misses,
        stats.entries,
    );

    let mut rng = StdRng::seed_from_u64(12345);
    let prefixes: Vec<usize> = rare_event::figure8_prefixes()
        .into_iter()
        .filter(|&k| k <= chain_len)
        .collect();
    for &k in &prefixes {
        let event = rare_event::all_ones_event(k);
        let lp = cold[k - 1];
        println!("== event: O[0..{k}] all 1 — exact log p = {lp:.2} ==");
        let estimator = RejectionEstimator {
            max_samples,
            checkpoint_every: max_samples / 4,
        };
        for p in estimator.estimate(model.root(), &event, &mut rng) {
            let log_est = if p.estimate > 0.0 {
                format!("{:.2}", p.estimate.ln())
            } else {
                "-inf".into()
            };
            println!(
                "  sampler n={:>7} hits={:>4} log_est={log_est:>8} t={}",
                p.samples,
                p.hits,
                fmt_secs(p.seconds)
            );
        }
    }
    println!("\nExact answers are O(ms) and deterministic; sampler estimates fluctuate");
    println!("and may report zero hits long past the exact answer's availability.");

    if args.json {
        let json = JsonObject::new()
            .str("bench", "fig8_rare_events")
            .str("mode", args.mode())
            .int("chain_len", chain_len as u64)
            .int("batch_size", events.len() as u64)
            .int("threads", u64::from(pool.thread_count()))
            .num("translate_s", translate_t)
            .num("seq_cold_s", cold_t)
            .num("par_cold_s", par_cold_t)
            .num("par_speedup", cold_t / par_cold_t)
            .num("warm_s", warm_t)
            .num("engine_hit_rate", stats.hit_rate())
            .bool("par_matches_seq_bitwise", results_match);
        json.write("BENCH_fig8.json")
            .expect("write BENCH_fig8.json");
        println!("\nwrote BENCH_fig8.json");
    }
}
