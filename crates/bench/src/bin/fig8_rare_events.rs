//! Fig. 8: exact rare-event probabilities vs rejection-sampling
//! trajectories.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl_baseline::sampler::RejectionEstimator;
use sppl_bench::{fmt_secs, timed};
use sppl_core::engine::QueryEngine;
use sppl_core::event::Event;
use sppl_core::Factory;
use sppl_models::rare_event;

fn main() {
    let factory = Factory::new();
    let (model, t) = timed(|| {
        rare_event::chain_network(20)
            .compile(&factory)
            .expect("compiles")
    });
    println!("chain network translated in {}\n", fmt_secs(t));

    // Batched exact answers through the query engine: cold (first pass,
    // populating the cache) vs warm (repeat of the same batch).
    let events: Vec<Event> = rare_event::figure8_prefixes()
        .into_iter()
        .map(rare_event::all_ones_event)
        .collect();
    let engine = QueryEngine::new(factory, model.clone());
    let (cold, cold_t) = timed(|| engine.logprob_many(&events).expect("exact"));
    let (warm, warm_t) = timed(|| engine.logprob_many(&events).expect("exact"));
    assert_eq!(cold, warm, "warm batch must be bit-identical");
    let stats = engine.stats();
    println!(
        "batched exact answers: cold {} vs warm {} ({} hits / {} misses / {} entries)\n",
        fmt_secs(cold_t),
        fmt_secs(warm_t),
        stats.hits,
        stats.misses,
        stats.entries,
    );

    let mut rng = StdRng::seed_from_u64(12345);
    for (k, lp) in rare_event::figure8_prefixes().into_iter().zip(cold) {
        let event = rare_event::all_ones_event(k);
        println!("== event: O[0..{k}] all 1 — exact log p = {lp:.2} ==");
        let estimator = RejectionEstimator {
            max_samples: 400_000,
            checkpoint_every: 100_000,
        };
        for p in estimator.estimate(&model, &event, &mut rng) {
            let log_est = if p.estimate > 0.0 {
                format!("{:.2}", p.estimate.ln())
            } else {
                "-inf".into()
            };
            println!(
                "  sampler n={:>7} hits={:>4} log_est={log_est:>8} t={}",
                p.samples,
                p.hits,
                fmt_secs(p.seconds)
            );
        }
    }
    println!("\nExact answers are O(ms) and deterministic; sampler estimates fluctuate");
    println!("and may report zero hits long past the exact answer's availability.");
}
