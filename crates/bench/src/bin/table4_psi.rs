//! Table 4: stage-wise runtime of the SPPL multi-stage workflow
//! (translate / condition / query) versus the single-stage enumerative
//! engine (the PSI substitute) across the Sec. 6.2 benchmark suite.

use sppl_baseline::enumerative::{EnumOutcome, EnumerativeEngine};
use sppl_bench::suite::{benchmarks, run_enumerative, run_sppl};
use sppl_bench::{fmt_secs, mean_std, Table};

fn main() {
    let engine = EnumerativeEngine::default();
    let mut table = Table::new([
        "Benchmark",
        "Datasets",
        "SPPL translate",
        "SPPL condition",
        "SPPL query",
        "SPPL overall",
        "Enum* overall",
    ]);
    println!("Table 4: multi-stage SPPL vs single-stage enumerative engine\n");
    for bench in benchmarks() {
        let sppl = run_sppl(&bench);
        let n = bench.datasets.len();
        let (cond_mean, _) = mean_std(&sppl.condition_s);
        let (query_mean, _) = mean_std(&sppl.query_s);

        let enum_runs = run_enumerative(&bench, &engine);
        let mut enum_total = 0.0;
        let mut exhausted = false;
        let mut max_disagreement = 0.0f64;
        for (run, sppl_value) in enum_runs.iter().zip(&sppl.values) {
            match run {
                EnumOutcome::Solved { value, seconds, .. } => {
                    enum_total += seconds;
                    max_disagreement = max_disagreement.max((value - sppl_value).abs());
                }
                EnumOutcome::ResourceExhausted { seconds, .. } => {
                    enum_total += seconds;
                    exhausted = true;
                }
            }
        }
        let enum_cell = if exhausted {
            format!("o/m after {}", fmt_secs(enum_total))
        } else {
            format!("{} (agree<{max_disagreement:.1e})", fmt_secs(enum_total))
        };
        table.row([
            bench.name.clone(),
            n.to_string(),
            fmt_secs(sppl.translate_s),
            format!("{n}x{}", fmt_secs(cond_mean)),
            format!("{n}x{}", fmt_secs(query_mean)),
            fmt_secs(sppl.overall()),
            enum_cell,
        ]);
    }
    table.print();
    println!("\n*single-stage flat-enumeration engine (PSI substitute, DESIGN.md §2);");
    println!("o/m = term budget exhausted, the analogue of PSI running out of memory.");
}
