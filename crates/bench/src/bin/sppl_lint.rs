//! `sppl-lint` — run the static analyzer over SPPL programs.
//!
//! ```text
//! sppl-lint [--json] [--deny-warnings] [--builtin] [FILE ...]
//! ```
//!
//! Each `FILE` is parsed and analyzed; diagnostics print as
//! `file:line:col-range: severity[CODE]: message` (or as a JSON array
//! with `--json`). `--builtin` additionally lints every SPPL program
//! shipped in `sppl-models` (the paper's figure and table workloads).
//! Exit status is 1 when any error was reported — or any warning under
//! `--deny-warnings` — and 0 otherwise.

use std::fmt::Write as _;
use std::process::ExitCode;

use sppl_analyze::{check, Diagnostic, Severity};
use sppl_models::{fairness, hmm, indian_gpa, networks, psi_suite, rare_event};

fn builtin_programs() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    let mut add = |name: &str, source: String| out.push((format!("<{name}>"), source));
    let gpa = indian_gpa::model();
    add("fig2/indian_gpa", gpa.source.clone());
    add("fig3/hmm", hmm::hierarchical_hmm(5).source.clone());
    add(
        "fig8/rare_events",
        rare_event::chain_network(6).source.clone(),
    );
    for m in networks::table1_models() {
        add(&format!("table1/{}", m.name), m.source.clone());
    }
    add(
        "table4/digit_recognition",
        psi_suite::digit_recognition(4).source.clone(),
    );
    add("table4/trueskill", psi_suite::trueskill().source.clone());
    add(
        "table4/clinical_trial",
        psi_suite::clinical_trial(3, 3).source.clone(),
    );
    for task in fairness::all_tasks() {
        add(&format!("table2/{}", task.name), task.model.source.clone());
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_record(file: &str, d: &Diagnostic) -> String {
    format!(
        r#"{{"file":"{}","code":"{}","severity":"{}","line":{},"col":{},"end_line":{},"end_col":{},"message":"{}"}}"#,
        json_escape(file),
        d.code,
        d.severity,
        d.span.line,
        d.span.col,
        d.span.end_line,
        d.span.end_col,
        json_escape(&d.message),
    )
}

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut builtin = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--builtin" => builtin = true,
            "--help" | "-h" => {
                println!("usage: sppl-lint [--json] [--deny-warnings] [--builtin] [FILE ...]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("sppl-lint: unknown flag {other}");
                return ExitCode::FAILURE;
            }
            file => files.push(file.to_string()),
        }
    }
    if !builtin && files.is_empty() {
        eprintln!("usage: sppl-lint [--json] [--deny-warnings] [--builtin] [FILE ...]");
        return ExitCode::FAILURE;
    }

    let mut programs: Vec<(String, String)> = Vec::new();
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(source) => programs.push((file.clone(), source)),
            Err(e) => {
                eprintln!("sppl-lint: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if builtin {
        programs.extend(builtin_programs());
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut records: Vec<String> = Vec::new();
    for (name, source) in &programs {
        for d in check(source) {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            if json {
                records.push(json_record(name, &d));
            } else {
                println!("{name}:{}", d.render());
            }
        }
    }
    if json {
        println!("[{}]", records.join(",\n "));
    } else if errors + warnings > 0 {
        eprintln!(
            "sppl-lint: {errors} error(s), {warnings} warning(s) across {} program(s)",
            programs.len()
        );
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
