//! Load generator for `sppl-serve`: in-process client threads driving a
//! real TCP server through contended (coalescing), throughput
//! (batching), open-loop, and posterior workload phases, asserting every
//! served answer bit-identical to the corresponding direct [`Model`]
//! call — including queries against posterior digests after `condition`.
//!
//! By default the server runs in-process on an ephemeral loopback port;
//! `--connect ADDR` drives an external `sppl-serve` instead (the CI
//! smoke test does this). Results go to `BENCH_serve.json` with
//! throughput, p50/p99 latency, the coalesce rate, and the server's
//! batch-size histogram.
//!
//! Flags (shared set from [`sppl_bench::args`], plus):
//!
//! * `--connect ADDR` — drive an already-running server instead of an
//!   in-process one (`--cache-snapshot` then applies to nothing and is
//!   rejected; snapshots belong to the server process).
//! * `--clients N` — concurrent client connections (default 8; smoke 4).
//! * `--rounds N` — contended-phase rounds (default 200; smoke 25).
//!
//! `--threads` sizes the in-process server's worker pool;
//! `--cache-snapshot PATH` gives the in-process server the full snapshot
//! lifecycle (warm start from the newest rotated generation, final save
//! on shutdown).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use sppl_bench::args::BenchArgs;
use sppl_bench::json::JsonObject;
use sppl_bench::{fmt_count, timed, Table};
use sppl_core::Model;
use sppl_serve::client::Client;
use sppl_serve::protocol::{StatsSnapshot, WireEvent, BATCH_HIST_BUCKETS};
use sppl_serve::server::{ServeConfig, Server, SnapshotPolicy};

/// The benchmark model: mixed continuous/discrete, cheap enough for
/// high query rates, rich enough that distinct events exercise distinct
/// cache keys.
const SOURCE: &str = "
Weight ~ normal(0, 1)
Cls ~ choice({'spam': 0.4, 'ham': 0.6})
if (Cls == 'spam') { Score ~ normal(2, 1) }
else { Score ~ normal(-1, 2) }
";

struct ServeArgs {
    base: BenchArgs,
    connect: Option<String>,
    clients: usize,
    rounds: usize,
}

fn parse_args() -> ServeArgs {
    let mut connect = None;
    let mut clients = 0usize;
    let mut rounds = 0usize;
    let base = BenchArgs::parse_with(|flag, next| match flag {
        "--connect" => connect = Some(next().expect("--connect takes HOST:PORT")),
        "--clients" => {
            clients = next()
                .and_then(|v| v.parse().ok())
                .expect("--clients takes a positive integer")
        }
        "--rounds" => {
            rounds = next()
                .and_then(|v| v.parse().ok())
                .expect("--rounds takes a positive integer")
        }
        other => panic!(
            "unknown flag {other} (expected the shared bench flags, \
             --connect ADDR, --clients N, --rounds N)"
        ),
    });
    if clients == 0 {
        clients = if base.test { 4 } else { 8 };
    }
    if rounds == 0 {
        rounds = if base.test { 25 } else { 200 };
    }
    assert!(
        !(connect.is_some() && base.cache_snapshot.is_some()),
        "--cache-snapshot configures the in-process server; \
         with --connect the server process owns its snapshots"
    );
    ServeArgs {
        base,
        connect,
        clients,
        rounds,
    }
}

/// A distinct per-(phase, index) query event with a fresh cache key.
fn distinct_event(phase: u64, index: u64) -> WireEvent {
    let t = -3.0 + ((phase.wrapping_mul(7919) + index) % 6000) as f64 / 1000.0;
    match index % 3 {
        0 => WireEvent::le("Weight", t),
        1 => WireEvent::gt("Score", t),
        _ => WireEvent::And(vec![
            WireEvent::eq_str("Cls", "spam"),
            WireEvent::le("Score", t),
        ]),
    }
}

/// Checks a served log-probability against the direct in-process call,
/// bit for bit.
fn assert_bits(direct: &Model, event: &WireEvent, served: f64) {
    let want = direct
        .logprob(&event.to_event().expect("wire event converts"))
        .expect("direct call succeeds");
    assert_eq!(
        served.to_bits(),
        want.to_bits(),
        "served logprob {served} != direct {want} for {event:?}"
    );
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Latencies (µs, sorted) → (p50, p99).
fn p50_p99(mut latencies: Vec<f64>) -> (f64, f64) {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (percentile(&latencies, 0.50), percentile(&latencies, 0.99))
}

struct PhaseResult {
    calls: u64,
    elapsed_s: f64,
    latencies_us: Vec<f64>,
}

impl PhaseResult {
    fn throughput(&self) -> f64 {
        self.calls as f64 / self.elapsed_s
    }
}

/// Runs `per_client` calls on each of `clients` connections, all
/// started together; `query(client_idx, call_idx, connection)` issues
/// one call and returns its latency in microseconds. With `pace` set,
/// call *i* on each connection is released no earlier than `i * pace`
/// after the phase start (open-loop arrivals: the schedule does not
/// wait for other clients' responses).
fn run_clients(
    addr: SocketAddr,
    clients: usize,
    per_client: u64,
    pace: Option<Duration>,
    query: impl Fn(usize, u64, &mut Client) -> f64 + Sync,
) -> PhaseResult {
    let barrier = Barrier::new(clients);
    let (latencies, elapsed_s) = timed(|| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let barrier = &barrier;
                    let query = &query;
                    scope.spawn(move || {
                        let mut conn = Client::connect(addr).expect("connect");
                        let mut latencies = Vec::with_capacity(per_client as usize);
                        barrier.wait();
                        let phase_start = Instant::now();
                        for i in 0..per_client {
                            if let Some(pace) = pace {
                                let due = pace * (i as u32);
                                if let Some(wait) = due.checked_sub(phase_start.elapsed()) {
                                    std::thread::sleep(wait);
                                }
                            }
                            latencies.push(query(c, i, &mut conn));
                        }
                        latencies
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect::<Vec<f64>>()
        })
    });
    PhaseResult {
        calls: (clients as u64) * per_client,
        elapsed_s,
        latencies_us: latencies,
    }
}

fn main() {
    let args = parse_args();

    // The in-process server (unless --connect): workers sized by
    // --threads, snapshot lifecycle wired to --cache-snapshot.
    let server = match &args.connect {
        Some(_) => None,
        None => {
            let config = ServeConfig {
                // One worker per client connection plus the control
                // client, or the phases serialize and nothing coalesces.
                workers: args.base.threads.max(args.clients + 2),
                snapshot: args.base.cache_snapshot.clone().map(|base| SnapshotPolicy {
                    base,
                    interval: Duration::from_millis(500),
                    keep: 3,
                }),
                ..ServeConfig::default()
            };
            Some(Server::start(config).expect("start in-process server"))
        }
    };
    let addr: SocketAddr = match (&args.connect, &server) {
        (Some(addr), _) => addr.parse().expect("--connect takes HOST:PORT"),
        (None, Some(server)) => server.local_addr(),
        (None, None) => unreachable!(),
    };

    let mut control = Client::connect(addr).expect("connect control client");
    let (digest, vars, _) = control.register(SOURCE).expect("register");
    assert_eq!(vars, ["Cls", "Score", "Weight"], "scope over the wire");
    let direct = sppl_analyze::compile_model(SOURCE).expect("direct model");
    assert_eq!(
        direct.model_digest(),
        digest,
        "server digest must match the direct compile"
    );
    let stats_before = control.stats().expect("stats");

    // Phase 1 — contended closed loop: every round, all clients race the
    // SAME fresh query; concurrent arrivals coalesce onto one evaluation.
    let direct_ref = &direct;
    let bits_checked = AtomicU64::new(0);
    let contended = run_clients(
        addr,
        args.clients,
        args.rounds as u64,
        None,
        |_, round, conn| {
            let event = distinct_event(1, round);
            let start = Instant::now();
            let served = conn.logprob(digest, &event).expect("contended logprob");
            let us = start.elapsed().as_secs_f64() * 1e6;
            assert_bits(direct_ref, &event, served);
            bits_checked.fetch_add(1, Ordering::Relaxed);
            us
        },
    );
    let stats_contended = control.stats().expect("stats");
    let coalesced = stats_contended.coalesced - stats_before.coalesced;

    // Phase 2 — throughput closed loop: distinct queries per client, as
    // fast as the closed loop allows; same-window arrivals batch.
    let per_client = if args.base.test { 50 } else { 400 };
    let throughput = run_clients(addr, args.clients, per_client, None, |c, i, conn| {
        let event = distinct_event(2 + c as u64, i);
        let start = Instant::now();
        let served = conn.logprob(digest, &event).expect("throughput logprob");
        let us = start.elapsed().as_secs_f64() * 1e6;
        assert_bits(direct_ref, &event, served);
        bits_checked.fetch_add(1, Ordering::Relaxed);
        us
    });

    // Phase 3 — open loop: paced arrivals at a fixed target rate, the
    // latency-under-load shape (arrival times don't wait for responses
    // from other clients; each connection paces its own share).
    let target_rate = if args.base.test { 800.0 } else { 4000.0 };
    let open_calls = if args.base.test { 60 } else { 300 };
    let pace = Duration::from_secs_f64(args.clients as f64 / target_rate);
    let open = run_clients(addr, args.clients, open_calls, Some(pace), |c, i, conn| {
        let event = distinct_event(100 + c as u64, i);
        let start = Instant::now();
        let served = conn.prob(digest, &event).expect("open-loop prob");
        let us = start.elapsed().as_secs_f64() * 1e6;
        let want = direct_ref
            .prob(&event.to_event().expect("wire event"))
            .expect("direct prob");
        assert_eq!(served.to_bits(), want.to_bits(), "prob bit parity");
        bits_checked.fetch_add(1, Ordering::Relaxed);
        us
    });

    // Phase 4 — posterior flow: condition over the wire, check the
    // posterior digest against the direct closure-theorem call, then
    // assert bit parity for queries against the posterior digest.
    let observe = WireEvent::eq_str("Cls", "spam");
    let (posterior_digest, fresh) = control.condition(digest, &observe).expect("condition");
    let direct_posterior = direct
        .condition(&observe.to_event().expect("wire event"))
        .expect("direct condition");
    let posterior_digest_match = direct_posterior.model_digest() == posterior_digest;
    assert!(
        posterior_digest_match,
        "posterior digests diverge: wire {posterior_digest} vs direct {}",
        direct_posterior.model_digest()
    );
    assert!(fresh, "first conditioning registers a fresh posterior");
    for i in 0..(if args.base.test { 20 } else { 100 }) {
        let event = distinct_event(7, i);
        let served = control
            .logprob(posterior_digest, &event)
            .expect("posterior logprob");
        let want = direct_posterior
            .logprob(&event.to_event().expect("wire event"))
            .expect("direct posterior logprob");
        assert_eq!(served.to_bits(), want.to_bits(), "posterior bit parity");
        bits_checked.fetch_add(1, Ordering::Relaxed);
    }
    // Chained conditioning stays digest-stable too.
    let chain = [observe.clone(), WireEvent::gt("Score", 1.0)];
    let (chained_digest, _) = control
        .condition_chain(digest, &chain)
        .expect("condition_chain");
    let direct_chain = direct
        .condition_chain(&[
            chain[0].to_event().expect("wire event"),
            chain[1].to_event().expect("wire event"),
        ])
        .expect("direct chain");
    assert_eq!(
        direct_chain.model_digest(),
        chained_digest,
        "chained posterior digest parity"
    );

    let stats_after: StatsSnapshot = control.stats().expect("stats");
    drop(control);
    if let Some(server) = server {
        server.shutdown(); // final snapshot generation, when configured
    }

    let total_calls = contended.calls + throughput.calls + open.calls;
    let coalesce_rate = coalesced as f64 / contended.calls as f64;
    assert!(
        coalesced > 0,
        "contended load must coalesce at least one query"
    );
    let (contended_p50, contended_p99) = p50_p99(contended.latencies_us.clone());
    let (throughput_p50, throughput_p99) = p50_p99(throughput.latencies_us.clone());
    let (open_p50, open_p99) = p50_p99(open.latencies_us.clone());
    let batch_hist: Vec<String> = BATCH_HIST_BUCKETS
        .iter()
        .zip(stats_after.batch_hist.iter())
        .map(|(label, count)| format!("{label}:{count}"))
        .collect();
    let batch_hist = batch_hist.join(" ");

    let mut table = Table::new(["Phase", "Calls", "Elapsed", "q/s", "p50 µs", "p99 µs"]);
    for (name, phase, p50, p99) in [
        ("contended", &contended, contended_p50, contended_p99),
        ("throughput", &throughput, throughput_p50, throughput_p99),
        ("open-loop", &open, open_p50, open_p99),
    ] {
        table.row([
            name.to_string(),
            phase.calls.to_string(),
            format!("{:.3} s", phase.elapsed_s),
            fmt_count(phase.throughput()),
            format!("{p50:.0}"),
            format!("{p99:.0}"),
        ]);
    }
    println!(
        "serve_bench: {} clients against {} (bit-identical answers asserted)\n",
        args.clients,
        match &args.connect {
            Some(addr) => format!("external server {addr}"),
            None => "in-process server".to_string(),
        }
    );
    table.print();
    println!(
        "\ncoalesced {coalesced}/{} contended calls ({:.1}%); \
         {} batches over {} batched queries (max {}); hist {batch_hist}",
        contended.calls,
        coalesce_rate * 100.0,
        stats_after.batches,
        stats_after.batched_queries,
        stats_after.max_batch,
    );
    println!(
        "posterior digest parity: wire condition == direct condition ({posterior_digest}); \
         {} answers bit-checked",
        bits_checked.load(Ordering::Relaxed)
    );

    if args.base.json {
        JsonObject::new()
            .str("bench", "serve")
            .str("mode", args.base.mode())
            .int("clients", args.clients as u64)
            .int(
                "server_workers",
                args.base.threads.max(args.clients + 2) as u64,
            )
            .int("total_calls", total_calls)
            .num("contended_qps", contended.throughput())
            .num("contended_p50_us", contended_p50)
            .num("contended_p99_us", contended_p99)
            .int("coalesced", coalesced)
            .num("coalesce_rate", coalesce_rate)
            .num("throughput_qps", throughput.throughput())
            .num("throughput_p50_us", throughput_p50)
            .num("throughput_p99_us", throughput_p99)
            .num("open_target_qps", target_rate)
            .num("open_qps", open.throughput())
            .num("open_p50_us", open_p50)
            .num("open_p99_us", open_p99)
            .int("batches", stats_after.batches)
            .int("batched_queries", stats_after.batched_queries)
            .int("max_batch", stats_after.max_batch)
            .str("batch_hist", &batch_hist)
            .int("cache_entries", stats_after.cache_entries)
            .int("models", stats_after.models)
            .int("bits_checked", bits_checked.load(Ordering::Relaxed))
            .bool("bits_identical", true)
            .bool("posterior_digest_match", posterior_digest_match)
            .write("BENCH_serve.json")
            .expect("write BENCH_serve.json");
        println!("\nwrote BENCH_serve.json");
    }
}
