//! Fig. 4: conditioning a stochastic many-to-one transform — posterior
//! component weights and solved preimage intervals.

use sppl_bench::{fmt_secs, timed};
use sppl_core::condition::condition;
use sppl_core::event::Event;
use sppl_core::transform::Transform;
use sppl_core::var::Var;
use sppl_core::Factory;
use sppl_lang::compile;
use sppl_sets::Interval;

fn main() {
    let factory = Factory::new();
    let src = "
X ~ normal(0, 2)
if (X < 1) { Z = -(X**3) + X**2 + 6*X }
else { Z = -5*sqrt(X) + 11 }
";
    let (model, t) = timed(|| compile(&factory, src).expect("compiles"));
    let x = Transform::id(Var::new("X"));
    let z = Transform::id(Var::new("Z"));
    println!("translated in {}", fmt_secs(t));
    println!(
        "prior branch weights: P[X<1] = {:.3} (paper .69)\n",
        model.prob(&Event::lt(x.clone(), 1.0)).unwrap()
    );

    let e = Event::and(vec![
        Event::le(z.clone().pow_int(2), 4.0),
        Event::ge(z.clone(), 0.0),
    ]);
    let (posterior, ct) = timed(|| condition(&factory, &model, &e).expect("positive prob"));
    println!("conditioned on Z² <= 4 ∧ Z >= 0 in {}\n", fmt_secs(ct));
    println!("posterior component masses (paper Fig. 4d: .16/.49/.35):");
    for (label, lo, hi) in [
        ("cubic branch, X in [-2.18, -2.00]", -2.18, -2.0),
        ("cubic branch, X in [ 0.00,  0.33]", 0.0, 0.33),
        ("radical branch, X in [ 3.24, 4.84]", 3.24, 4.84),
    ] {
        let p = posterior
            .prob(&Event::in_interval(x.clone(), Interval::closed(lo, hi)))
            .unwrap();
        println!("  {label}: {p:.3}");
    }
    println!("\nposterior CDF of Z on [0, 2]:");
    for i in 0..=8 {
        let r = i as f64 * 0.25;
        println!(
            "  P[Z <= {r:.2} | e] = {:.4}",
            posterior.prob(&Event::le(z.clone(), r)).unwrap()
        );
    }
}
