//! Fig. 3: hierarchical HMM smoothing and the linear growth of the
//! optimized sum-product expression, plus the memoized-session speedup on
//! repeated smoothing passes and the parallel-batch speedup of
//! `par_logprob_many` over the sequential path — all through the
//! session-first [`Model`](sppl_core::Model) API (conditioning returns a
//! queryable posterior model).
//!
//! Flags:
//!
//! * `--test` — smoke mode: smaller horizon and fewer passes (CI).
//! * `--json` — additionally write machine-readable results to
//!   `BENCH_fig3.json` in the working directory.
//! * `--threads N` — thread count for the parallel batch (default:
//!   `SPPL_THREADS` or the machine's available parallelism).
//! * `--cache-snapshot PATH` — load a `SharedCache` snapshot from `PATH`
//!   when it exists and save one on exit: run twice with the same path
//!   and the second *process* answers every shared-cache query without
//!   touching the evaluator (warm restart; asserted below).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl_bench::args::BenchArgs;
use sppl_bench::json::JsonObject;
use sppl_bench::{bits_match, fmt_count, fmt_secs, timed, Table};
use sppl_core::stats::graph_stats;
use sppl_core::{Event, SharedCache};
use sppl_models::hmm;

fn main() {
    let args = BenchArgs::parse();
    // Repeated smoothing passes for the cached-vs-uncached comparison: the
    // filtering dashboards of Sec. 2.2 re-ask the same posterior marginals
    // every refresh.
    let passes = if args.test { 2 } else { 5 };
    let n = if args.test { 64 } else { 100 };
    let growth: &[usize] = if args.test {
        &[5, 10, 25]
    } else {
        &[5, 10, 25, 50, 100]
    };

    // Growth of the expression with the horizon (Fig. 3c vs 3d). Timed
    // compiles bypass the process-global compile cache: `translate_s` in
    // the JSON artifact means *translation*, not a cache hit
    // (`compile_bench` owns the cached-compile numbers).
    let mut table = Table::new(["Steps", "Physical nodes", "Tree-expanded", "Translate"]);
    for &steps in growth {
        let (model, t) = timed(|| {
            sppl_analyze::compile_model_uncached(&hmm::hierarchical_hmm(steps).source)
                .expect("compiles")
        });
        let stats = graph_stats(model.root());
        table.row([
            steps.to_string(),
            stats.physical_nodes.to_string(),
            fmt_count(stats.tree_nodes),
            fmt_secs(t),
        ]);
    }
    println!("Fig. 3d: optimized expression grows linearly in the horizon\n");
    table.print();

    // Smoothing on a simulated trace (Fig. 3b, bottom panel). This
    // session runs *without* the shared cache so the cold/cached numbers
    // below measure the evaluator and engine cache alone; the shared
    // cache gets its own session (and its own numbers) afterwards.
    let (model, translate_t) = timed(|| {
        sppl_analyze::compile_model_uncached(&hmm::hierarchical_hmm(n).source).expect("compiles")
    });
    let mut rng = StdRng::seed_from_u64(33);
    let trace = hmm::simulate_trace(&mut rng, n);
    let (posterior, constrain_t) = timed(|| {
        model
            .constrain(&hmm::observation_assignment(&trace.x, &trace.y))
            .expect("positive density")
    });
    println!(
        "\nsmoothing {n} steps: conditioned in {}",
        fmt_secs(constrain_t)
    );

    // Repeated smoothing: every pass re-asks all marginals. The uncached
    // path re-evaluates each query from scratch (per-call memo only); the
    // posterior session memoizes whole queries across passes.
    let queries = hmm::smoothing_queries(n);
    let (series, uncached_t) = timed(|| {
        let mut last = Vec::new();
        for _ in 0..passes {
            last = queries
                .iter()
                .map(|q| posterior.root().prob(q).expect("query"))
                .collect::<Vec<f64>>();
        }
        last
    });

    let (cached_series, cached_t) = timed(|| {
        let mut last = Vec::new();
        for _ in 0..passes {
            last = posterior.prob_many(&queries).expect("query");
        }
        last
    });
    assert_eq!(series, cached_series, "session must answer exactly");

    let stats = posterior.stats();
    println!(
        "{passes}x{n} smoothing queries: uncached {} vs cached {} — {:.1}x speedup",
        fmt_secs(uncached_t),
        fmt_secs(cached_t),
        uncached_t / cached_t
    );
    println!(
        "engine cache: {} hits / {} misses / {} entries (hit rate {:.0}%); \
         factory node-level: {} entries",
        stats.hits,
        stats.misses,
        stats.entries,
        stats.hit_rate() * 100.0,
        posterior.factory().prob_cache_stats().entries,
    );

    // Parallel batch inference: the smoothing marginals plus the pairwise
    // persistence queries, answered cold by the sequential path and cold
    // again by `par_logprob_many` over a scoped pool. Evaluations over
    // the immutable posterior DAG are independent, so the batch is
    // embarrassingly parallel; results must agree bit for bit.
    let batch: Vec<Event> = {
        let mut b = queries.clone();
        b.extend(hmm::pairwise_queries(n));
        b
    };
    let pool = args.pool();
    posterior.logprob_many(&batch).expect("warmup"); // touch every code path once
    posterior.clear_caches();
    let (seq_cold, seq_cold_t) =
        timed(|| posterior.logprob_many(&batch).expect("sequential batch"));
    posterior.clear_caches();
    let (par_cold, par_cold_t) = timed(|| {
        posterior
            .par_logprob_many_in(&pool, &batch)
            .expect("parallel batch")
    });
    let results_match = bits_match(&seq_cold, &par_cold);
    assert!(results_match, "parallel batch must be bit-identical");
    let par_speedup = seq_cold_t / par_cold_t;
    println!(
        "\n{}-event batch, cold caches: sequential {} vs parallel {} on {} threads — {:.2}x",
        batch.len(),
        fmt_secs(seq_cold_t),
        fmt_secs(par_cold_t),
        pool.thread_count(),
        par_speedup,
    );

    // Warm parallel pass: everything is engine-cache hits.
    let (_, par_warm_t) = timed(|| {
        posterior
            .par_logprob_many_in(&pool, &batch)
            .expect("warm batch")
    });
    let final_stats = posterior.stats();
    println!(
        "warm parallel repeat: {} (engine hit rate now {:.0}%)",
        fmt_secs(par_warm_t),
        final_stats.hit_rate() * 100.0,
    );

    let correct = series
        .iter()
        .zip(&trace.z)
        .filter(|(p, z)| u8::from(**p > 0.5) == **z)
        .count();
    println!("posterior MAP matches true hidden state at {correct}/{n} steps");
    println!("\nt, true_z, p_z1");
    for t in (0..n).step_by(5) {
        println!("{t}, {}, {:.4}", trace.z[t], series[t]);
    }

    // Cross-process persistence. A *separate* session over the run's
    // SharedCache answers the whole batch: on a cold start it fills the
    // cache (one evaluator pass); when `--cache-snapshot` found a file
    // written by a previous process, every one of these lookups must be
    // a hit — the previous process already computed the working set
    // under the same content digests. The main measurements above stay
    // evaluator-cold either way.
    let (cache, snapshot_loaded) = args.shared_cache(1 << 16);
    if snapshot_loaded > 0 {
        println!("\nwarm restart: loaded {snapshot_loaded} shared-cache entries from snapshot");
    }
    let shared_posterior = hmm::hierarchical_hmm(n)
        .session()
        .expect("compiles")
        .with_shared_cache(Arc::clone(&cache))
        .constrain(&hmm::observation_assignment(&trace.x, &trace.y))
        .expect("positive density");
    let (shared_answers, shared_fill_t) =
        timed(|| shared_posterior.logprob_many(&batch).expect("batch"));
    assert!(
        bits_match(&seq_cold, &shared_answers),
        "shared-cache session must agree bit-for-bit"
    );
    let shared = cache.stats();
    if snapshot_loaded > 0 {
        assert_eq!(
            shared.misses, 0,
            "snapshot-warm run must be pure shared-cache hits ({shared:?}) — \
             run the writer and reader with the same mode/size flags"
        );
    }
    let snapshot_saved = args.save_cache(&cache);
    println!(
        "\nshared cache: batch in {} — {} hits / {} misses / {} entries \
         (loaded {snapshot_loaded}, saved {snapshot_saved})",
        fmt_secs(shared_fill_t),
        shared.hits,
        shared.misses,
        shared.entries,
    );

    // Warm-restart demonstration, in-process: restore the snapshot we
    // just wrote into a *fresh* cache behind a *fresh* session (new
    // factory, new pointers — everything a restarted server would
    // rebuild) and replay the batch. Every answer must come from the
    // restored cache, bit-identical to the cold pass. CI's double run of
    // this binary proves the same property across two real processes.
    let mut warm_restart_batch_s = 0.0;
    let mut warm_restart_pure_hits = false;
    if let Some(path) = &args.cache_snapshot {
        let restored = Arc::new(SharedCache::new(1 << 16));
        let reloaded = restored.load_snapshot(path).expect("reload own snapshot");
        let session = hmm::hierarchical_hmm(n)
            .session()
            .expect("compiles")
            .with_shared_cache(Arc::clone(&restored));
        let posterior2 = session
            .constrain(&hmm::observation_assignment(&trace.x, &trace.y))
            .expect("positive density");
        let (replay, t) = timed(|| posterior2.logprob_many(&batch).expect("warm batch"));
        warm_restart_batch_s = t;
        let rs = restored.stats();
        assert_eq!(
            rs.misses, 0,
            "restored snapshot must answer the batch without the evaluator ({rs:?})"
        );
        assert!(
            bits_match(&seq_cold, &replay),
            "replay must be bit-identical"
        );
        warm_restart_pure_hits = true;
        println!(
            "warm restart replay: {} events in {} from {reloaded} restored entries \
             (cold sequential pass was {}) — {:.0}x",
            batch.len(),
            fmt_secs(t),
            fmt_secs(seq_cold_t),
            seq_cold_t / t,
        );
    }

    if args.json {
        let json = JsonObject::new()
            .str("bench", "fig3_hmm")
            .str("mode", args.mode())
            .int("steps", n as u64)
            .int("passes", passes as u64)
            .int("batch_size", batch.len() as u64)
            .int("threads", u64::from(pool.thread_count()))
            .num("translate_s", translate_t)
            .num("constrain_s", constrain_t)
            .num("uncached_passes_s", uncached_t)
            .num("cached_passes_s", cached_t)
            .num("cached_speedup", uncached_t / cached_t)
            .num("seq_cold_s", seq_cold_t)
            .num("par_cold_s", par_cold_t)
            .num("par_speedup", par_speedup)
            .num("par_warm_s", par_warm_t)
            .num("engine_hit_rate", final_stats.hit_rate())
            .bool("par_matches_seq_bitwise", results_match)
            .int("shared_hits", shared.hits)
            .int("shared_misses", shared.misses)
            .int("shared_entries", shared.entries as u64)
            .num("shared_batch_s", shared_fill_t)
            .int("snapshot_loaded", snapshot_loaded as u64)
            .int("snapshot_saved", snapshot_saved as u64)
            .num("warm_restart_batch_s", warm_restart_batch_s)
            .num(
                "warm_restart_speedup",
                if warm_restart_batch_s > 0.0 {
                    seq_cold_t / warm_restart_batch_s
                } else {
                    0.0
                },
            )
            .bool("warm_restart_pure_hits", warm_restart_pure_hits);
        json.write("BENCH_fig3.json")
            .expect("write BENCH_fig3.json");
        println!("\nwrote BENCH_fig3.json");
    }
}
