//! Fig. 3: hierarchical HMM smoothing and the linear growth of the
//! optimized sum-product expression, plus the memoized-query-engine
//! speedup on repeated smoothing passes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl_bench::{fmt_count, fmt_secs, timed, Table};
use sppl_core::density::constrain;
use sppl_core::engine::QueryEngine;
use sppl_core::stats::graph_stats;
use sppl_core::Factory;
use sppl_models::hmm;

/// Repeated smoothing passes for the cached-vs-uncached comparison: the
/// filtering dashboards of Sec. 2.2 re-ask the same posterior marginals
/// every refresh.
const PASSES: usize = 5;

fn main() {
    // Growth of the expression with the horizon (Fig. 3c vs 3d).
    let mut table = Table::new(["Steps", "Physical nodes", "Tree-expanded", "Translate"]);
    for n in [5usize, 10, 25, 50, 100] {
        let factory = Factory::new();
        let (spe, t) = timed(|| {
            hmm::hierarchical_hmm(n)
                .compile(&factory)
                .expect("compiles")
        });
        let stats = graph_stats(&spe);
        table.row([
            n.to_string(),
            stats.physical_nodes.to_string(),
            fmt_count(stats.tree_nodes),
            fmt_secs(t),
        ]);
    }
    println!("Fig. 3d: optimized expression grows linearly in the horizon\n");
    table.print();

    // Smoothing on a simulated 100-step trace (Fig. 3b, bottom panel).
    let n = 100;
    let factory = Factory::new();
    let model = hmm::hierarchical_hmm(n)
        .compile(&factory)
        .expect("compiles");
    let mut rng = StdRng::seed_from_u64(33);
    let trace = hmm::simulate_trace(&mut rng, n);
    let (posterior, ct) = timed(|| {
        constrain(
            &factory,
            &model,
            &hmm::observation_assignment(&trace.x, &trace.y),
        )
        .expect("positive density")
    });
    println!("\nsmoothing {n} steps: conditioned in {}", fmt_secs(ct));

    // Repeated smoothing: every pass re-asks all 100 marginals. The
    // uncached path re-evaluates each query from scratch (per-call memo
    // only); the query engine memoizes whole queries across passes.
    let queries = hmm::smoothing_queries(n);
    let (series, uncached_t) = timed(|| {
        let mut last = Vec::new();
        for _ in 0..PASSES {
            last = queries
                .iter()
                .map(|q| posterior.prob(q).expect("query"))
                .collect::<Vec<f64>>();
        }
        last
    });

    let engine = QueryEngine::new(factory, posterior);
    let (cached_series, cached_t) = timed(|| {
        let mut last = Vec::new();
        for _ in 0..PASSES {
            last = engine.prob_many(&queries).expect("query");
        }
        last
    });
    assert_eq!(series, cached_series, "engine must answer exactly");

    let stats = engine.stats();
    println!(
        "{PASSES}x{n} smoothing queries: uncached {} vs cached {} — {:.1}x speedup",
        fmt_secs(uncached_t),
        fmt_secs(cached_t),
        uncached_t / cached_t
    );
    println!(
        "engine cache: {} hits / {} misses / {} entries (hit rate {:.0}%); \
         factory node-level: {} entries",
        stats.hits,
        stats.misses,
        stats.entries,
        stats.hit_rate() * 100.0,
        engine.factory().prob_cache_stats().entries,
    );

    let correct = series
        .iter()
        .zip(&trace.z)
        .filter(|(p, z)| u8::from(**p > 0.5) == **z)
        .count();
    println!("posterior MAP matches true hidden state at {correct}/{n} steps");
    println!("\nt, true_z, p_z1");
    for t in (0..n).step_by(5) {
        println!("{t}, {}, {:.4}", trace.z[t], series[t]);
    }
}
