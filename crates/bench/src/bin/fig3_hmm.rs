//! Fig. 3: hierarchical HMM smoothing and the linear growth of the
//! optimized sum-product expression.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl_bench::{fmt_count, fmt_secs, timed, Table};
use sppl_core::density::constrain;
use sppl_core::stats::graph_stats;
use sppl_core::Factory;
use sppl_models::hmm;

fn main() {
    // Growth of the expression with the horizon (Fig. 3c vs 3d).
    let mut table = Table::new(["Steps", "Physical nodes", "Tree-expanded", "Translate"]);
    for n in [5usize, 10, 25, 50, 100] {
        let factory = Factory::new();
        let (spe, t) = timed(|| {
            hmm::hierarchical_hmm(n)
                .compile(&factory)
                .expect("compiles")
        });
        let stats = graph_stats(&spe);
        table.row([
            n.to_string(),
            stats.physical_nodes.to_string(),
            fmt_count(stats.tree_nodes),
            fmt_secs(t),
        ]);
    }
    println!("Fig. 3d: optimized expression grows linearly in the horizon\n");
    table.print();

    // Smoothing on a simulated 100-step trace (Fig. 3b, bottom panel).
    let n = 100;
    let factory = Factory::new();
    let model = hmm::hierarchical_hmm(n)
        .compile(&factory)
        .expect("compiles");
    let mut rng = StdRng::seed_from_u64(33);
    let trace = hmm::simulate_trace(&mut rng, n);
    let (posterior, ct) = timed(|| {
        constrain(
            &factory,
            &model,
            &hmm::observation_assignment(&trace.x, &trace.y),
        )
        .expect("positive density")
    });
    let (series, qt) = timed(|| {
        (0..n)
            .map(|t| posterior.prob(&hmm::hidden_state_event(t)).expect("query"))
            .collect::<Vec<f64>>()
    });
    println!(
        "\nsmoothing {n} steps: condition {} + {} for all queries",
        fmt_secs(ct),
        fmt_secs(qt)
    );
    let correct = series
        .iter()
        .zip(&trace.z)
        .filter(|(p, z)| u8::from(**p > 0.5) == **z)
        .count();
    println!("posterior MAP matches true hidden state at {correct}/{n} steps");
    println!("\nt, true_z, p_z1");
    for t in (0..n).step_by(5) {
        println!("{t}, {}, {:.4}", trace.z[t], series[t]);
    }
}
