//! Fig. 2: the Indian GPA problem — prior and posterior marginal
//! distributions (CDF series) and the Fig. 2g posterior weights.

use sppl_bench::timed;
use sppl_core::condition::condition;
use sppl_core::event::Event;
use sppl_core::transform::Transform;
use sppl_core::var::Var;
use sppl_core::Factory;
use sppl_models::indian_gpa;

fn main() {
    let factory = Factory::new();
    let (model, t) = timed(|| indian_gpa::model().compile(&factory).expect("compiles"));
    println!("translated in {}\n", sppl_bench::fmt_secs(t));

    let nationality = |s: &str| Event::eq_str(Transform::id(Var::new("Nationality")), s);
    let perfect = Event::eq_real(Transform::id(Var::new("Perfect")), 1.0);

    println!(
        "prior:     P[USA]={:.3}  P[Perfect]={:.3}",
        model.prob(&nationality("USA")).unwrap(),
        model.prob(&perfect).unwrap()
    );

    let (posterior, ct) = timed(|| {
        condition(&factory, &model, &indian_gpa::condition_event()).expect("positive prob")
    });
    println!(
        "posterior: P[USA]={:.3}  P[Perfect]={:.3}   (conditioned in {})",
        posterior.prob(&nationality("USA")).unwrap(),
        posterior.prob(&perfect).unwrap(),
        sppl_bench::fmt_secs(ct)
    );

    println!("\nGPA CDF series (prior vs posterior), x = 0..12:");
    println!("x, prior, posterior");
    for (i, q) in indian_gpa::gpa_cdf_queries().into_iter().enumerate() {
        if i % 10 != 0 {
            continue;
        }
        println!(
            "{:.1}, {:.4}, {:.4}",
            i as f64 / 10.0,
            model.prob(&q).unwrap(),
            posterior.prob(&q).unwrap()
        );
    }
}
