//! Table 1: SPE graph size with and without the factorization and
//! deduplication optimizations, on the seven benchmark models.
//!
//! "Optimized" is the physical node count of the hash-consed DAG built
//! with all Sec. 5.1 optimizations; "unoptimized" is the tree-expanded
//! node count of the same semantics (what the expression would occupy
//! with no sharing), computed analytically — see DESIGN.md §3 for why the
//! absolute unoptimized counts differ from the paper's while the shape
//! (ratios ≈1 for structure-poor models, astronomic for the HMM) is
//! preserved.

use sppl_bench::{fmt_count, timed, Table};
use sppl_core::stats::graph_stats;
use sppl_core::Factory;
use sppl_models::networks::table1_models;

fn main() {
    let mut table = Table::new([
        "Benchmark",
        "Unoptimized (tree)",
        "Optimized (DAG)",
        "Compression",
        "Translate",
    ]);
    for model in table1_models() {
        let factory = Factory::new();
        let (spe, secs) = timed(|| model.compile(&factory).expect("benchmark compiles"));
        let stats = graph_stats(&spe);
        table.row([
            model.name.clone(),
            fmt_count(stats.tree_nodes),
            stats.physical_nodes.to_string(),
            format!("{:.1}x", stats.compression_ratio()),
            sppl_bench::fmt_secs(secs),
        ]);
    }
    println!("Table 1: effect of factorization + deduplication on SPE size\n");
    table.print();
}
