//! Compile-cache benchmark: cold translation vs warm compile-cache
//! hits, on the workloads where compilation itself is the bottleneck.
//!
//! Three paths answer the same programs:
//!
//! * **cold** — [`compile_model_uncached`]: parse → analyze → translate,
//!   every time (the pre-cache behavior).
//! * **mem hit** — a warm [`CompileCache`]'s in-memory tier: the stored
//!   SPE wire payload is deserialized into a fresh factory (zero
//!   translations).
//! * **disk hit** — a *fresh* [`CompileCache`] over a directory another
//!   cache instance populated — the cross-process restart path: the
//!   `.key` alias skips parse + analyze, the `.spe` payload skips
//!   translation.
//!
//! Every path must produce the same `ModelDigest` and bit-identical
//! query answers (asserted), and in full mode both warm paths must be at
//! least 10× faster than cold translation on the Fig. 3 HMM and the
//! 10³-component mixture — the headline claim of `BENCH_compile.json`.
//!
//! Flags:
//!
//! * `--test` — smoke mode: smaller workloads, no speedup floor (CI).
//! * `--json` — additionally write `BENCH_compile.json` in the working
//!   directory.
//! * `--threads N` — accepted for interface parity; compilation is
//!   single-threaded.

use sppl_analyze::{compile_model_uncached, CompileCache};
use sppl_bench::args::BenchArgs;
use sppl_bench::json::JsonObject;
use sppl_bench::{bits_match, fmt_secs, timed, Table};
use sppl_core::event::var;
use sppl_core::{Event, Model};
use sppl_models::{fairness, hmm};

/// A `K`-component mixture as one `choice` plus an `if`/`elif` chain —
/// the shape whose translation cost grows linearly in `K` while its
/// wire payload stays a flat sum of leaves.
fn mixture_source(k: usize) -> String {
    let weight = 1.0 / k as f64;
    let mut src = String::new();
    src.push_str("M ~ choice({");
    for i in 0..k {
        if i > 0 {
            src.push_str(", ");
        }
        src.push_str(&format!("'c{i}': {weight}"));
    }
    src.push_str("})\n");
    for i in 0..k {
        let kw = if i == 0 { "if" } else { "elif" };
        src.push_str(&format!(
            "{kw} (M == 'c{i}') {{\n    X ~ normal({i}, 1)\n}}\n"
        ));
    }
    src
}

/// One workload's measurements, all three paths bit-verified.
struct Run {
    name: &'static str,
    cold_s: f64,
    mem_s: f64,
    disk_s: f64,
}

impl Run {
    fn mem_speedup(&self) -> f64 {
        self.cold_s / self.mem_s
    }

    fn disk_speedup(&self) -> f64 {
        self.cold_s / self.disk_s
    }
}

/// Best-of-`reps` timing for the warm paths (they sit in the
/// microsecond-to-millisecond range where a single sample is noise).
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut out, mut best) = timed(&mut f);
    for _ in 1..reps {
        let (value, s) = timed(&mut f);
        if s < best {
            best = s;
            out = value;
        }
    }
    (out, best)
}

fn answers(model: &Model, events: &[Event]) -> Vec<f64> {
    events
        .iter()
        .map(|e| model.logprob(e).expect("workload query"))
        .collect()
}

fn measure(name: &'static str, source: &str, events: &[Event], dir: &std::path::Path) -> Run {
    // Cold: the pre-cache path, translation and all.
    let (cold_model, cold_s) = timed(|| compile_model_uncached(source).expect("cold compile"));
    let reference = answers(&cold_model, events);

    // Warm in-memory: fill once (one translation), then hit.
    let cache = CompileCache::new(8);
    cache.compile(source).expect("fill");
    let (mem_model, mem_s) = best_of(3, || cache.compile(source).expect("memory hit"));
    let stats = cache.stats();
    assert_eq!(
        stats.translations, 1,
        "{name}: warm hits must not translate"
    );
    assert!(stats.hits >= 1, "{name}: the timed compile must be a hit");

    // Cross-process disk hit: one cache instance persists, a second
    // (fresh, empty memory tier — a stand-in for a new process) reads.
    let scratch = dir.join(name);
    let writer = CompileCache::new(8)
        .with_dir(&scratch, 0)
        .expect("writer dir");
    writer.compile(source).expect("persist");
    let reader = CompileCache::new(8)
        .with_dir(&scratch, 0)
        .expect("reader dir");
    let (disk_model, disk_s) = timed(|| reader.compile(source).expect("disk hit"));
    let stats = reader.stats();
    assert_eq!(
        stats.translations, 0,
        "{name}: a disk hit must not translate"
    );
    assert_eq!(
        stats.disk_hits, 1,
        "{name}: the timed compile must hit disk"
    );

    // The whole point: every path is the same model, to the bit.
    for (path, model) in [("mem", &mem_model), ("disk", &disk_model)] {
        assert_eq!(
            model.model_digest(),
            cold_model.model_digest(),
            "{name}: {path} hit must reproduce the digest"
        );
        assert!(
            bits_match(&answers(model, events), &reference),
            "{name}: {path} hit must answer bit-identically"
        );
    }

    Run {
        name,
        cold_s,
        mem_s,
        disk_s,
    }
}

fn main() {
    let args = BenchArgs::parse();
    let dir = std::env::temp_dir().join(format!("sppl-compile-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Fig. 3 hierarchical HMM: deep switch/for nesting, the translation
    // stress case.
    let n = if args.test { 12 } else { 100 };
    let hmm_source = hmm::hierarchical_hmm(n).source;
    let hmm_events = hmm::smoothing_queries(n.min(8));
    let fig3 = measure("fig3_hmm", &hmm_source, &hmm_events, &dir);

    // The wide mixture: K components, K-branch elif dispatch.
    let k = if args.test { 100 } else { 1000 };
    let mix_source = mixture_source(k);
    let mix_events = vec![
        var("X").le(k as f64 / 2.0),
        var("M").eq("c7"),
        var("X").gt(0.0) & var("M").eq("c0"),
    ];
    let mixture = measure("mixture_1e3", &mix_source, &mix_events, &dir);

    // All fifteen Table 2 fairness programs, compiled back to back
    // through one shared cache — the many-small-programs regime.
    let tasks = fairness::all_tasks();
    let (cold_models, fair_cold_s) = timed(|| {
        tasks
            .iter()
            .map(|t| compile_model_uncached(&t.model.source).expect("fairness cold"))
            .collect::<Vec<_>>()
    });
    let fair_cache = CompileCache::new(32);
    for t in &tasks {
        fair_cache.compile(&t.model.source).expect("fairness fill");
    }
    let (mem_models, fair_mem_s) = timed(|| {
        tasks
            .iter()
            .map(|t| fair_cache.compile(&t.model.source).expect("fairness mem"))
            .collect::<Vec<_>>()
    });
    let fair_dir = dir.join("fairness");
    let fair_writer = CompileCache::new(32)
        .with_dir(&fair_dir, 0)
        .expect("fairness writer dir");
    for t in &tasks {
        fair_writer
            .compile(&t.model.source)
            .expect("fairness persist");
    }
    let fair_reader = CompileCache::new(32)
        .with_dir(&fair_dir, 0)
        .expect("fairness reader dir");
    let (disk_models, fair_disk_s) = timed(|| {
        tasks
            .iter()
            .map(|t| fair_reader.compile(&t.model.source).expect("fairness disk"))
            .collect::<Vec<_>>()
    });
    assert_eq!(fair_reader.stats().translations, 0);
    assert_eq!(fair_reader.stats().disk_hits, tasks.len() as u64);
    for ((cold, mem), disk) in cold_models.iter().zip(&mem_models).zip(&disk_models) {
        assert_eq!(cold.model_digest(), mem.model_digest());
        assert_eq!(cold.model_digest(), disk.model_digest());
    }
    let fairness_run = Run {
        name: "fairness_15",
        cold_s: fair_cold_s,
        mem_s: fair_mem_s,
        disk_s: fair_disk_s,
    };

    let runs = [&fig3, &mixture, &fairness_run];
    let mut table = Table::new([
        "Workload",
        "Cold translate",
        "Mem hit",
        "Disk hit",
        "Mem speedup",
        "Disk speedup",
    ]);
    for run in runs {
        table.row([
            run.name.to_string(),
            fmt_secs(run.cold_s),
            fmt_secs(run.mem_s),
            fmt_secs(run.disk_s),
            format!("{:.1}x", run.mem_speedup()),
            format!("{:.1}x", run.disk_speedup()),
        ]);
    }
    println!("compile cache vs cold translation (digest + bit parity asserted)\n");
    table.print();

    if !args.test {
        for run in [&fig3, &mixture] {
            assert!(
                run.mem_speedup() >= 10.0,
                "{}: in-memory hit must be >= 10x cold translate, got {:.1}x",
                run.name,
                run.mem_speedup()
            );
            assert!(
                run.disk_speedup() >= 10.0,
                "{}: disk hit must be >= 10x cold translate, got {:.1}x",
                run.name,
                run.disk_speedup()
            );
        }
    }

    if args.json {
        let mut json = JsonObject::new()
            .str("bench", "compile")
            .str("mode", args.mode())
            .bool("digests_equal", true)
            .bool("bits_identical", true);
        for run in runs {
            let k = run.name;
            json = json
                .num(&format!("{k}_cold_translate_s"), run.cold_s)
                .num(&format!("{k}_mem_hit_s"), run.mem_s)
                .num(&format!("{k}_disk_hit_s"), run.disk_s)
                .num(&format!("{k}_mem_speedup"), run.mem_speedup())
                .num(&format!("{k}_disk_speedup"), run.disk_speedup());
        }
        json.write("BENCH_compile.json")
            .expect("write BENCH_compile.json");
        println!("\nwrote BENCH_compile.json");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
