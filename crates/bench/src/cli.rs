//! Shared flag parsing for the fig/table binaries that support smoke
//! mode and machine-readable output (`fig3_hmm`, `fig8_rare_events`).

use sppl_core::engine::default_threads;
use sppl_core::Pool;

/// Flags common to the JSON-emitting bench binaries.
pub struct BenchArgs {
    /// `--test`: smoke mode — smaller workloads for CI.
    pub test: bool,
    /// `--json`: additionally write a `BENCH_*.json` artifact.
    pub json: bool,
    /// `--threads N`: parallel-path thread count (defaults to
    /// [`default_threads`]).
    pub threads: usize,
}

impl BenchArgs {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics (with a usage hint) on an unknown flag or a malformed
    /// `--threads` value — these are developer-facing binaries.
    pub fn parse() -> BenchArgs {
        let mut args = BenchArgs {
            test: false,
            json: false,
            threads: default_threads(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--test" => args.test = true,
                "--json" => args.json = true,
                "--threads" => {
                    let n = it
                        .next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .expect("--threads takes a positive integer");
                    assert!(n >= 1, "--threads takes a positive integer");
                    args.threads = n;
                }
                other => panic!("unknown flag {other} (expected --test, --json, --threads N)"),
            }
        }
        args
    }

    /// `"test"` or `"full"` — the mode tag written into the JSON
    /// artifacts.
    pub fn mode(&self) -> &'static str {
        if self.test {
            "test"
        } else {
            "full"
        }
    }

    /// A scoped pool sized by `--threads`.
    pub fn pool(&self) -> Pool {
        Pool::new(self.threads.min(u32::MAX as usize) as u32)
    }
}
