//! The shared Sec. 6.2 benchmark suite driver used by the Table 3 and
//! Table 4 binaries: each benchmark is a program, a list of datasets, and
//! a fixed query, runnable through both the multi-stage SPPL workflow and
//! the single-stage enumerative (PSI-substitute) engine.

use sppl_baseline::enumerative::{Data, EnumOutcome, EnumerativeEngine};
use sppl_core::condition::condition;
use sppl_core::density::constrain;
use sppl_core::event::Event;
use sppl_core::{Factory, Spe};
use sppl_models::psi_suite;

use crate::timed;

/// A benchmark: program, datasets, and a posterior query.
pub struct PsiBenchmark {
    /// Display name (matches Table 4 rows).
    pub name: String,
    /// SPPL source.
    pub source: String,
    /// Datasets to condition on, one posterior per dataset.
    pub datasets: Vec<Data>,
    /// The query evaluated against every posterior.
    pub query: Event,
}

/// Builds the Table 4 benchmark list. Sizes are scaled to container-friendly
/// dimensions (see EXPERIMENTS.md); the distribution signatures match the
/// paper's Table 4 column.
pub fn benchmarks() -> Vec<PsiBenchmark> {
    let mut out = Vec::new();

    // Digit Recognition: C × B^64, 10 datasets.
    {
        let n_pixels = 64;
        let model = psi_suite::digit_recognition(n_pixels);
        out.push(PsiBenchmark {
            name: "Digit Recognition".into(),
            source: model.source,
            datasets: (0..10)
                .map(|i| {
                    Data::Assignment(psi_suite::digit_dataset(i as u64, (i * 3) % 10, n_pixels))
                })
                .collect(),
            query: psi_suite::digit_query(7),
        });
    }

    // TrueSkill: P × Bi², 2 datasets.
    {
        let model = psi_suite::trueskill();
        out.push(PsiBenchmark {
            name: "TrueSkill".into(),
            source: model.source,
            datasets: vec![
                Data::Assignment(psi_suite::trueskill_dataset(9)),
                Data::Assignment(psi_suite::trueskill_dataset(3)),
            ],
            query: psi_suite::trueskill_query(7),
        });
    }

    // Clinical Trial: B × U³ × B^20 × B^20, 10 datasets.
    {
        let (nt, nc) = (20, 20);
        let model = psi_suite::clinical_trial(nt, nc);
        out.push(PsiBenchmark {
            name: "Clinical Trial".into(),
            source: model.source,
            datasets: (0..10)
                .map(|i| {
                    let (pt, pc) = if i % 2 == 0 { (0.8, 0.3) } else { (0.5, 0.5) };
                    Data::Assignment(psi_suite::clinical_trial_dataset(i as u64, nt, nc, pt, pc))
                })
                .collect(),
            query: psi_suite::clinical_trial_query(),
        });
    }

    // Gamma Transforms: G × T × (T + T), 5 interval datasets.
    {
        let model = psi_suite::gamma_transforms();
        out.push(PsiBenchmark {
            name: "Gamma Transforms".into(),
            source: model.source,
            datasets: psi_suite::gamma_constraints()
                .into_iter()
                .map(Data::Event)
                .collect(),
            query: psi_suite::gamma_query(),
        });
    }

    // Student Interviews with 2 and 6 students, 10 datasets each.
    for students in [2usize, 6] {
        let model = psi_suite::student_interviews(students);
        out.push(PsiBenchmark {
            name: format!("Student Interviews {students}"),
            source: model.source,
            datasets: (0..10)
                .map(|i| {
                    Data::Assignment(psi_suite::student_interviews_dataset(i as u64, students))
                })
                .collect(),
            query: psi_suite::student_interviews_query(),
        });
    }

    // Markov Switching with 3 and 100 steps, 10 datasets each.
    for steps in [3usize, 100] {
        let model = psi_suite::markov_switching(steps);
        out.push(PsiBenchmark {
            name: format!("Markov Switching {steps}"),
            source: model.source,
            datasets: (0..10)
                .map(|i| Data::Assignment(psi_suite::markov_switching_dataset(i as u64, steps)))
                .collect(),
            query: psi_suite::markov_switching_query(steps),
        });
    }

    out
}

/// Stage-wise timings of the SPPL multi-stage workflow on one benchmark.
pub struct SpplRun {
    /// Translation (stage S1) seconds.
    pub translate_s: f64,
    /// Per-dataset conditioning (stage S2) seconds.
    pub condition_s: Vec<f64>,
    /// Per-dataset querying (stage S3) seconds.
    pub query_s: Vec<f64>,
    /// The posterior query values (for cross-checking the baseline).
    pub values: Vec<f64>,
}

impl SpplRun {
    /// Total wall-clock across all stages and datasets.
    pub fn overall(&self) -> f64 {
        self.translate_s + self.condition_s.iter().sum::<f64>() + self.query_s.iter().sum::<f64>()
    }
}

/// Runs the multi-stage workflow: translate once, then condition + query
/// per dataset.
pub fn run_sppl(bench: &PsiBenchmark) -> SpplRun {
    let factory = Factory::new();
    let (spe, translate_s) =
        timed(|| sppl_lang::compile(&factory, &bench.source).expect("benchmark compiles"));
    let mut condition_s = Vec::new();
    let mut query_s = Vec::new();
    let mut values = Vec::new();
    for data in &bench.datasets {
        let (posterior, cs): (Spe, f64) = timed(|| match data {
            Data::None => spe.clone(),
            Data::Event(e) => condition(&factory, &spe, e).expect("positive probability"),
            Data::Assignment(a) => constrain(&factory, &spe, a).expect("positive density"),
        });
        let (value, qs) = timed(|| posterior.prob(&bench.query).expect("query"));
        condition_s.push(cs);
        query_s.push(qs);
        values.push(value);
    }
    SpplRun {
        translate_s,
        condition_s,
        query_s,
        values,
    }
}

/// Per-dataset outcomes of the single-stage enumerative engine.
pub fn run_enumerative(bench: &PsiBenchmark, engine: &EnumerativeEngine) -> Vec<EnumOutcome> {
    bench
        .datasets
        .iter()
        .map(|data| {
            engine
                .query(&bench.source, data, &bench.query)
                .expect("enumerative query")
        })
        .collect()
}
