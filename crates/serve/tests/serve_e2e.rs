//! End-to-end serving over real TCP sockets: every answer a client
//! reads off the wire is bit-identical to the corresponding direct
//! [`Model`] call in this process, racing clients coalesce into one
//! underlying evaluation, protocol errors come back as structured
//! error responses, and a restarted server warm-starts from its own
//! rotated snapshots with pure cache hits.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use sppl_core::density::Assignment;
use sppl_core::digest::ModelDigest;
use sppl_core::prelude::{Outcome, Var};
use sppl_serve::protocol::{WireEvent, WireOutcome};
use sppl_serve::server::SnapshotPolicy;
use sppl_serve::{Client, ServeConfig, Server};

/// The model served in every test: one continuous and one nominal
/// variable, so comparisons, equality, and posteriors all have bite.
const SOURCE: &str = "X ~ normal(0, 1)\nN ~ choice({'a': 0.25, 'b': 0.75})\n";

fn start(config: ServeConfig) -> Server {
    Server::start(config).expect("server binds on loopback")
}

#[test]
fn served_answers_match_direct_calls_bit_for_bit() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let direct = sppl_analyze::compile_model(SOURCE).expect("direct compile");

    // register: digest equals the direct compile's content digest (that
    // is the whole query-by-digest contract), scope comes back sorted.
    let (digest, vars, fresh) = client.register(SOURCE).expect("register");
    assert_eq!(digest, direct.model_digest());
    assert_eq!(vars, ["N", "X"]);
    assert!(fresh, "first registration is fresh");
    let (_, _, fresh) = client.register(SOURCE).expect("re-register");
    assert!(!fresh, "same digest re-registered is not fresh");

    // lookup: hit and miss.
    assert_eq!(
        client.lookup(digest).expect("lookup"),
        Some(vec!["N".to_string(), "X".to_string()])
    );
    assert_eq!(client.lookup(ModelDigest::from_u128(42)).unwrap(), None);

    // compile retains nothing: the digest answers, but is not queryable.
    let other = "Y ~ uniform(0, 2)\n";
    let (compiled, _) = client.compile(other).expect("compile");
    let direct_other = sppl_analyze::compile_model(other).expect("direct");
    assert_eq!(compiled, direct_other.model_digest());
    assert_eq!(client.lookup(compiled).unwrap(), None);

    // Single and batch queries, logprob and prob: bit parity throughout.
    let events = [
        WireEvent::le("X", 0.0),
        WireEvent::gt("X", 1.5),
        WireEvent::eq_str("N", "a"),
        WireEvent::And(vec![WireEvent::ge("X", -1.0), WireEvent::eq_str("N", "b")]),
        WireEvent::Not(Box::new(WireEvent::lt("X", -0.5))),
    ];
    for we in &events {
        let event = we.to_event().unwrap();
        let served = client.logprob(digest, we).expect("logprob");
        assert_eq!(served.to_bits(), direct.logprob(&event).unwrap().to_bits());
        let served = client.prob(digest, we).expect("prob");
        assert_eq!(served.to_bits(), direct.prob(&event).unwrap().to_bits());
    }
    let served = client.logprob_many(digest, &events).expect("batch");
    let direct_events: Vec<_> = events.iter().map(|we| we.to_event().unwrap()).collect();
    let reference = direct.logprob_many(&direct_events).unwrap();
    assert_eq!(served.len(), reference.len());
    for (s, r) in served.iter().zip(&reference) {
        assert_eq!(s.to_bits(), r.to_bits(), "batch answers must be exact");
    }

    // condition: the posterior digest equals the direct posterior's —
    // content-addressing crosses the wire — and posterior queries stay
    // bit-identical.
    let evidence = WireEvent::gt("X", 0.0);
    let (posterior, fresh) = client.condition(digest, &evidence).expect("condition");
    let direct_posterior = direct.condition(&evidence.to_event().unwrap()).unwrap();
    assert_eq!(posterior, direct_posterior.model_digest());
    assert!(fresh, "first conditioning registers the posterior");
    let (again, fresh) = client.condition(digest, &evidence).expect("re-condition");
    assert_eq!(again, posterior);
    assert!(!fresh, "same posterior is already registered");
    for we in &events {
        let served = client.logprob(posterior, we).expect("posterior query");
        let reference = direct_posterior.logprob(&we.to_event().unwrap()).unwrap();
        assert_eq!(served.to_bits(), reference.to_bits());
    }

    // condition_chain ≡ repeated condition, digest for digest.
    let chain = [WireEvent::gt("X", -1.0), WireEvent::lt("X", 1.0)];
    let (chained, _) = client.condition_chain(digest, &chain).expect("chain");
    let stepwise = direct
        .condition(&chain[0].to_event().unwrap())
        .unwrap()
        .condition(&chain[1].to_event().unwrap())
        .unwrap();
    assert_eq!(chained, stepwise.model_digest());

    // constrain: measure-zero observation, digest parity, then a
    // bit-identical query against the constrained posterior.
    let mut wire_obs = BTreeMap::new();
    wire_obs.insert("X".to_string(), WireOutcome::Real(0.5));
    let (constrained, _) = client.constrain(digest, &wire_obs).expect("constrain");
    let mut obs = Assignment::new();
    obs.insert(Var::new("X"), Outcome::Real(0.5));
    let direct_constrained = direct.constrain(&obs).unwrap();
    assert_eq!(constrained, direct_constrained.model_digest());
    let we = WireEvent::eq_str("N", "a");
    assert_eq!(
        client.logprob(constrained, &we).unwrap().to_bits(),
        direct_constrained
            .logprob(&we.to_event().unwrap())
            .unwrap()
            .to_bits()
    );

    let stats = client.stats().expect("stats");
    assert!(stats.requests > 0);
    assert_eq!(stats.errors, 0, "this session made no bad requests");
    assert!(stats.models >= 4, "root + three posteriors registered");
    server.shutdown();
}

#[test]
fn racing_clients_coalesce_into_one_evaluation() {
    let n = 6;
    let server = start(ServeConfig {
        // Every racing connection needs a live handler or the race
        // serializes; a long window gives stragglers time to coalesce.
        workers: n + 2,
        batch_window: Duration::from_millis(100),
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let mut control = Client::connect(addr).expect("connect");
    let (digest, _, _) = control.register(SOURCE).expect("register");

    let event = WireEvent::le("X", 0.25);
    let barrier = Arc::new(Barrier::new(n));
    let answers: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let event = event.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect racer");
                    barrier.wait();
                    client.logprob(digest, &event).expect("raced query")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let direct = sppl_analyze::compile_model(SOURCE).expect("direct compile");
    let reference = direct.logprob(&event.to_event().unwrap()).unwrap();
    for (i, answer) in answers.iter().enumerate() {
        assert_eq!(
            answer.to_bits(),
            reference.to_bits(),
            "racer {i} got a different answer"
        );
    }

    let stats = control.stats().expect("stats");
    assert_eq!(
        stats.cache_misses, 1,
        "n identical racing queries must evaluate exactly once ({stats:?})"
    );
    assert!(
        stats.coalesced >= 1,
        "concurrent in-flight duplicates must coalesce ({stats:?})"
    );
    // The other n-1 racers coalesced or hit the cache; a racer that
    // probes before the insert but reaches the slot map after the
    // owner's cleanup re-evaluates against the warm engine memo instead,
    // so the split is bounded, not exact.
    assert!(
        stats.coalesced + stats.cache_hits <= n as u64 - 1,
        "more coalesces/hits than racers ({stats:?})"
    );
    server.shutdown();
}

#[test]
fn protocol_errors_come_back_structured() {
    let server = start(ServeConfig::default());
    let addr = server.local_addr();

    // Typed client errors carry machine-readable kinds.
    let mut client = Client::connect(addr).expect("connect");
    let missing = ModelDigest::from_u128(0xdead);
    let err = client
        .logprob(missing, &WireEvent::le("X", 0.0))
        .expect_err("unregistered digest");
    assert_eq!(err.kind, "unknown_model");
    let err = client.compile("X ~ ~ nonsense").expect_err("bad source");
    assert_eq!(err.kind, "compile");
    let (digest, _, _) = client.register(SOURCE).expect("register");
    let err = client
        .logprob(digest, &WireEvent::le("Nope", 0.0))
        .expect_err("unknown variable");
    assert_eq!(err.kind, "query");

    // Raw wire garbage: the server answers (it never hangs up on a bad
    // line), flags ok=false, names the kind, and echoes the id.
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let mut line = String::new();
    for (sent, expect) in [
        ("this is not json\n", "\"kind\":\"bad_request\""),
        ("{\"id\":31,\"op\":\"warble\"}\n", "\"id\":31"),
        ("{\"op\":\"logprob\"}\n", "\"ok\":false"),
    ] {
        raw.write_all(sent.as_bytes()).expect("send");
        line.clear();
        reader.read_line(&mut line).expect("reply");
        assert!(line.contains("\"ok\":false"), "{sent:?} -> {line:?}");
        assert!(line.contains(expect), "{sent:?} -> {line:?}");
    }

    // The connection survives all of that: a good request still works.
    let stats = client.stats().expect("stats after errors");
    assert!(stats.errors >= 6, "every failure above was counted");
    server.shutdown();
}

#[test]
fn restarted_server_warm_starts_from_rotated_snapshots() {
    let dir = std::env::temp_dir().join(format!("sppl-serve-e2e-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let policy = SnapshotPolicy {
        base: dir.join("cache.snap"),
        interval: Duration::from_millis(50),
        keep: 2,
    };
    let events = [
        WireEvent::le("X", 0.0),
        WireEvent::gt("X", 1.0),
        WireEvent::eq_str("N", "b"),
    ];

    // First life: answer the working set, let the background saver run
    // at least once, then shut down (which saves a final generation).
    let server = start(ServeConfig {
        snapshot: Some(policy.clone()),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (digest, _, _) = client.register(SOURCE).expect("register");
    let first_life: Vec<f64> = events
        .iter()
        .map(|we| client.logprob(digest, we).expect("query"))
        .collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().expect("stats");
        if stats.snapshot_saves >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "background saver never ran"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
    assert!(
        !policy.base.exists(),
        "rotation writes generations, not the bare base path"
    );

    // Second life: same snapshot policy, fresh process state. The same
    // working set must be answered from the loaded snapshot alone.
    let server = start(ServeConfig {
        snapshot: Some(policy.clone()),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (digest2, _, _) = client.register(SOURCE).expect("re-register");
    assert_eq!(digest2, digest, "content digest is stable across lives");
    for (we, first) in events.iter().zip(&first_life) {
        let warm = client.logprob(digest, we).expect("warm query");
        assert_eq!(
            warm.to_bits(),
            first.to_bits(),
            "restart must not change an answer"
        );
    }
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.cache_misses, 0,
        "warm restart serves the working set without evaluating ({stats:?})"
    );
    assert_eq!(stats.cache_hits, events.len() as u64);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn arena_batches_are_bit_identical_to_direct_calls() {
    use sppl_serve::dispatch::ARENA_BATCH_MIN;

    // Enough distinct concurrent queries on one model to clear the
    // arena threshold inside a single batching window.
    let n = (ARENA_BATCH_MIN * 2).max(8);
    let server = start(ServeConfig {
        workers: n + 2,
        batch_window: Duration::from_millis(200),
        max_batch: n * 2,
        ..ServeConfig::default()
    });
    let addr = server.local_addr();
    let mut control = Client::connect(addr).expect("connect");
    let (digest, _, _) = control.register(SOURCE).expect("register");

    // Distinct events (no coalescing) so the window groups them all.
    let events: Vec<WireEvent> = (0..n)
        .map(|i| WireEvent::le("X", -1.5 + i as f64 * 0.4))
        .collect();
    let barrier = Arc::new(Barrier::new(n));
    let answers: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = events
            .iter()
            .map(|event| {
                let barrier = Arc::clone(&barrier);
                let event = event.clone();
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect racer");
                    barrier.wait();
                    client.logprob(digest, &event).expect("batched query")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let direct = sppl_analyze::compile_model(SOURCE).expect("direct compile");
    for (event, answer) in events.iter().zip(&answers) {
        let reference = direct.logprob(&event.to_event().unwrap()).unwrap();
        assert_eq!(
            answer.to_bits(),
            reference.to_bits(),
            "arena-served answer for {event:?} must be bit-identical"
        );
    }
    let stats = control.stats().expect("stats");
    assert!(
        stats.arena_batches >= 1,
        "a window of {n} distinct queries must route through the arena ({stats:?})"
    );
    server.shutdown();
}

#[test]
fn warm_compile_cache_restart_answers_without_translating() {
    let dir = std::env::temp_dir().join(format!("sppl-serve-e2e-cc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let events = [
        WireEvent::le("X", 0.5),
        WireEvent::eq_str("N", "a"),
        WireEvent::gt("X", -0.25),
    ];

    // First life: compiling SOURCE translates once and persists the
    // compiled SPE as a wire payload.
    let server = start(ServeConfig {
        compile_cache: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (digest, vars, fresh) = client.register(SOURCE).expect("register");
    assert!(fresh);
    let first_life: Vec<f64> = events
        .iter()
        .map(|we| client.logprob(digest, we).expect("query"))
        .collect();
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.translations, 1,
        "cold register translates ({stats:?})"
    );
    server.shutdown();

    // Second life: the payload on disk boot-registers the model, so the
    // digest answers before any client compiles anything — and a
    // re-register is a disk hit, not a translation.
    let server = start(ServeConfig {
        compile_cache: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(
        client.lookup(digest).expect("lookup"),
        Some(vars.clone()),
        "boot scan registers every persisted model"
    );
    for (we, first) in events.iter().zip(&first_life) {
        let warm = client.logprob(digest, we).expect("warm query");
        assert_eq!(
            warm.to_bits(),
            first.to_bits(),
            "a compile-cache restart must not change an answer"
        );
    }
    let (digest2, _, fresh) = client.register(SOURCE).expect("re-register");
    assert_eq!(digest2, digest);
    assert!(!fresh, "the boot scan already registered this digest");
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.translations, 0,
        "a warm compile cache serves the restart with zero translations ({stats:?})"
    );
    assert!(
        stats.compile_cache_hits + stats.compile_cache_disk_hits >= 1,
        "the re-register must hit a cache tier ({stats:?})"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn export_import_ships_compiled_models_between_servers() {
    let server_a = start(ServeConfig::default());
    let mut client_a = Client::connect(server_a.local_addr()).expect("connect A");
    let (digest, vars, _) = client_a.register(SOURCE).expect("register");

    // Export: digest echoes, payload is non-trivial binary.
    let (exported_digest, payload) = client_a.export(digest).expect("export");
    assert_eq!(exported_digest, digest);
    assert!(payload.len() > 40, "payload carries a real SPE");
    let err = client_a
        .export(ModelDigest::from_u128(0xbad))
        .expect_err("unknown digest");
    assert_eq!(err.kind, "unknown_model");

    // Import into a second, cold server: same digest, same scope, and
    // bit-identical answers — without ever seeing the source text.
    let server_b = start(ServeConfig::default());
    let mut client_b = Client::connect(server_b.local_addr()).expect("connect B");
    let (imported, vars_b, fresh) = client_b.import(&payload).expect("import");
    assert_eq!(imported, digest, "content digest crosses the wire");
    assert_eq!(vars_b, vars);
    assert!(fresh, "first import registers the model");
    for we in [
        WireEvent::le("X", 0.0),
        WireEvent::eq_str("N", "b"),
        WireEvent::And(vec![WireEvent::gt("X", 0.5), WireEvent::eq_str("N", "a")]),
    ] {
        assert_eq!(
            client_b.logprob(digest, &we).expect("B").to_bits(),
            client_a.logprob(digest, &we).expect("A").to_bits(),
            "imported model must answer bit-identically"
        );
    }
    let stats = client_b.stats().expect("stats B");
    assert_eq!(stats.translations, 0, "import never translates ({stats:?})");

    // A corrupted payload fails closed with a structured kind.
    let mut corrupt = payload.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    let err = client_b.import(&corrupt).expect_err("corrupt payload");
    assert_eq!(err.kind, "import");

    server_a.shutdown();
    server_b.shutdown();
}

#[test]
fn full_registry_rejects_with_structured_error() {
    let server = start(ServeConfig {
        registry_capacity: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (digest, _, _) = client.register(SOURCE).expect("register fills the slot");
    // Re-registering the same digest is fine (no new slot) …
    let (_, _, fresh) = client.register(SOURCE).expect("re-register");
    assert!(!fresh);
    // … but a new digest (here, a posterior) must be rejected loudly.
    let err = client
        .condition(digest, &WireEvent::gt("X", 0.0))
        .expect_err("full registry");
    assert_eq!(err.kind, "registry_full");
    assert!(!err.message.is_empty());
    server.shutdown();
}
