//! Wire-protocol round trips: every [`Request`] and [`Response`]
//! variant (including every error shape) survives encode → decode
//! unchanged, and probabilities survive *bit for bit* — the decimal
//! `value` field is presentation only; the hex `bits` field is the
//! authoritative representation and is what the decoder reads.

use std::collections::BTreeMap;

use sppl_core::digest::ModelDigest;
use sppl_serve::protocol::{
    Cmp, Request, Response, StatsSnapshot, WireError, WireEvent, WireOutcome,
};

fn digest(x: u128) -> ModelDigest {
    ModelDigest::from_u128(x)
}

/// One of every [`WireEvent`] shape, nested combinators included.
fn every_event_shape() -> Vec<WireEvent> {
    vec![
        WireEvent::Cmp {
            var: "X".to_string(),
            cmp: Cmp::Lt,
            value: -0.125,
        },
        WireEvent::le("X", 4.0),
        WireEvent::gt("X", 1e-300),
        WireEvent::ge("X", -4.5),
        WireEvent::eq_real("Perfect", 1.0),
        WireEvent::eq_str("Nationality", "India"),
        WireEvent::NeReal("Perfect".to_string(), 0.0),
        WireEvent::NeStr("Nationality".to_string(), "USA".to_string()),
        WireEvent::InInterval {
            var: "GPA".to_string(),
            lo: 8.0,
            lo_closed: false,
            hi: 10.0,
            hi_closed: true,
        },
        // Infinite endpoints render as `null` on the wire and must come
        // back as the same infinities.
        WireEvent::InInterval {
            var: "GPA".to_string(),
            lo: f64::NEG_INFINITY,
            lo_closed: false,
            hi: 0.0,
            hi_closed: false,
        },
        WireEvent::OneOf(
            "Nationality".to_string(),
            vec!["India".to_string(), "USA".to_string()],
        ),
        WireEvent::And(vec![WireEvent::le("X", 1.0), WireEvent::gt("Y", 0.0)]),
        WireEvent::Or(vec![
            WireEvent::eq_str("N", "a"),
            WireEvent::And(vec![]), // trivially-true leaf inside a combinator
        ]),
        WireEvent::Not(Box::new(WireEvent::Or(vec![WireEvent::lt("X", 0.0)]))),
    ]
}

/// One of every [`Request`] variant.
fn every_request() -> Vec<Request> {
    let mut assignment = BTreeMap::new();
    assignment.insert("GPA".to_string(), WireOutcome::Real(3.5));
    assignment.insert("Nationality".to_string(), WireOutcome::Str("India".into()));
    vec![
        Request::Compile {
            source: "X ~ normal(0, 1)\n".to_string(),
        },
        Request::Register {
            // Newlines and quotes must survive the string escaper.
            source: "N ~ choice({'a': 0.5, 'b': 0.5})\n".to_string(),
        },
        Request::Lookup { model: digest(7) },
        Request::Query {
            model: digest(8),
            events: vec![WireEvent::le("X", 0.0)],
            single: true,
            prob: false,
        },
        Request::Query {
            model: digest(8),
            events: every_event_shape(),
            single: false,
            prob: true,
        },
        Request::Condition {
            model: digest(9),
            event: WireEvent::Not(Box::new(WireEvent::eq_str("N", "a"))),
        },
        Request::ConditionChain {
            model: digest(10),
            events: vec![WireEvent::gt("X", 0.0), WireEvent::lt("X", 2.0)],
        },
        Request::Constrain {
            model: digest(11),
            assignment,
        },
        Request::Export { model: digest(12) },
        Request::Import {
            // Arbitrary binary (not a valid payload — transport only
            // cares that every byte survives the hex round trip).
            spe: vec![0x00, 0x01, 0xfe, 0xff, 0x53, 0x50],
        },
        Request::Import { spe: vec![] },
        Request::Stats,
    ]
}

/// One of every [`Response`] variant, exercising both single/batch value
/// shapes, both `fresh` arms, and found/not-found lookups.
fn every_response() -> Vec<Response> {
    vec![
        Response::Compiled {
            digest: digest(0xabc),
            vars: vec!["GPA".to_string(), "Nationality".to_string()],
            fresh: None,
        },
        Response::Compiled {
            digest: digest(u128::MAX), // all-f digest: no truncation
            vars: vec![],
            fresh: Some(true),
        },
        Response::Found {
            found: true,
            vars: vec!["X".to_string()],
        },
        Response::Found {
            found: false,
            vars: vec![],
        },
        Response::Values {
            // Non-round, denormal, and non-finite values: the decimal
            // field degrades (null for -inf) but `bits` carries them all.
            values: vec![0.1f64.ln(), 5e-324, f64::NEG_INFINITY, 0.0],
            single: false,
        },
        Response::Values {
            values: vec![(-1.5f64).exp().ln()],
            single: true,
        },
        Response::Posterior {
            digest: digest(0xfeed),
            fresh: true,
        },
        Response::Exported {
            digest: digest(0xdead),
            spe: vec![0x53, 0x50, 0x50, 0x4c, 0x00, 0xff, 0x7f],
        },
        Response::Exported {
            digest: digest(1),
            spe: vec![],
        },
        Response::Stats(StatsSnapshot {
            requests: 101,
            errors: 2,
            coalesced: 40,
            batches: 12,
            batched_queries: 61,
            max_batch: 9,
            batch_hist: [1, 2, 3, 4, 5, 6, 7],
            models: 3,
            compile_cache_hits: 8,
            compile_cache_disk_hits: 2,
            compile_cache_misses: 3,
            translations: 3,
            arena_batches: 5,
            cache_hits: 55,
            cache_misses: 6,
            cache_entries: 6,
            cache_evictions: 1,
            snapshot_saves: 4,
        }),
    ]
}

/// Every `kind` the server can put in an error response.
const ERROR_KINDS: [&str; 8] = [
    "bad_request",
    "compile",
    "unknown_model",
    "query",
    "import",
    "registry_full",
    "internal",
    "io",
];

#[test]
fn every_request_variant_round_trips() {
    for (i, request) in every_request().into_iter().enumerate() {
        let line = request.encode(Some(i as u64));
        let (id, decoded) = Request::decode(&line)
            .unwrap_or_else(|(_, e)| panic!("request {i} failed to decode: {e}\n{line}"));
        assert_eq!(id, Some(i as u64), "id must echo");
        assert_eq!(decoded, request, "request {i} changed across the wire");
        // Without an id the line must still decode (id is optional).
        let (id, decoded) = Request::decode(&request.encode(None)).expect("id-less line decodes");
        assert_eq!(id, None);
        assert_eq!(decoded, request);
    }
}

#[test]
fn every_response_variant_round_trips_bit_for_bit() {
    for (i, response) in every_response().into_iter().enumerate() {
        let line = response.encode(Some(1000 + i as u64));
        let (id, decoded) = Response::decode(&line)
            .unwrap_or_else(|e| panic!("response {i} failed to decode: {e}\n{line}"));
        assert_eq!(id, Some(1000 + i as u64));
        if let (Response::Values { values: sent, .. }, Response::Values { values: got, .. }) =
            (&response, &decoded)
        {
            for (s, g) in sent.iter().zip(got) {
                assert_eq!(s.to_bits(), g.to_bits(), "value lost bits on the wire");
            }
        }
        assert_eq!(decoded, response, "response {i} changed across the wire");
    }
}

#[test]
fn every_error_kind_round_trips() {
    for kind in ERROR_KINDS {
        let response = Response::Error(WireError::new(kind, format!("details for {kind}")));
        let line = response.encode(Some(5));
        assert!(line.contains("\"ok\":false"), "errors carry ok=false");
        let (id, decoded) = Response::decode(&line).expect("error decodes");
        assert_eq!(id, Some(5));
        assert_eq!(decoded, response);
    }
}

#[test]
fn malformed_requests_decode_to_bad_request_with_id_echo() {
    // (line, expect_id): decode failures still recover the id when the
    // JSON parsed far enough to contain one, so the client can correlate.
    let cases: &[(&str, Option<u64>)] = &[
        ("not json at all", None),
        ("{\"id\":7}", Some(7)),                              // missing op
        ("{\"id\":8,\"op\":\"frobnicate\"}", Some(8)),        // unknown op
        ("{\"op\":\"lookup\",\"model\":\"xyz\"}", None),      // bad digest
        ("{\"op\":\"logprob\",\"model\":\"00000000000000000000000000000001\"}", None), // no event
        ("{\"op\":\"compile\"}", None),                       // no source
        ("{\"id\":9,\"op\":\"condition\",\"model\":\"00000000000000000000000000000001\",\"event\":{\"var\":\"X\"}}", Some(9)), // incomplete event
    ];
    for (line, expect_id) in cases {
        let (id, err) = Request::decode(line).expect_err("malformed line must not decode");
        assert_eq!(&id, expect_id, "id echo for {line}");
        assert_eq!(err.kind, "bad_request", "kind for {line}: {err}");
        assert!(!err.message.is_empty(), "error must explain itself");
    }
}

#[test]
fn malformed_responses_are_rejected() {
    for line in [
        "not json",
        "{}",                             // missing ok
        "{\"ok\":false}",                 // failure without error body
        "{\"ok\":true}",                  // no recognizable payload
        "{\"ok\":true,\"bits\":\"xyz\"}", // bits not hex
    ] {
        let err = Response::decode(line).expect_err("malformed response must not decode");
        assert_eq!(err.kind, "bad_request", "{line}");
    }
}

#[test]
fn wire_events_convert_to_the_same_dsl_events() {
    use sppl_core::event::var;
    use sppl_sets::Interval;

    // The serving bit-parity guarantee starts here: `to_event` must make
    // exactly the DSL calls a direct caller would.
    let wire = WireEvent::And(vec![
        WireEvent::le("GPA", 4.0),
        WireEvent::Or(vec![
            WireEvent::eq_str("Nationality", "India"),
            WireEvent::InInterval {
                var: "GPA".to_string(),
                lo: 8.0,
                lo_closed: false,
                hi: 10.0,
                hi_closed: false,
            },
        ]),
    ]);
    let direct = var("GPA").le(4.0)
        & (var("Nationality").eq("India") | var("GPA").in_interval(Interval::open(8.0, 10.0)));
    assert_eq!(wire.to_event().unwrap(), direct);

    // Round-tripping the wire JSON does not change the resulting event
    // (hence not the cache fingerprint either).
    let rebuilt = WireEvent::from_json(&wire.to_json()).unwrap();
    assert_eq!(rebuilt.to_event().unwrap(), direct);

    // NaN and empty intervals are rejected before they can poison a key.
    assert!(WireEvent::le("X", f64::NAN).to_event().is_err());
    let empty = WireEvent::InInterval {
        var: "X".to_string(),
        lo: 2.0,
        lo_closed: false,
        hi: 1.0,
        hi_closed: false,
    };
    assert!(empty.to_event().is_err());
}
