//! A minimal, std-only JSON value: parser and renderer for the wire
//! protocol's line-delimited messages.
//!
//! The build is offline (no serde), and the protocol only needs flat-ish
//! objects of numbers, strings, booleans, arrays, and nested objects, so
//! a small recursive-descent parser over `&str` is the whole dependency.
//! Two deliberate properties:
//!
//! * **Objects preserve insertion order** (a `Vec` of pairs, not a map):
//!   rendering is deterministic, which keeps protocol round-trip tests
//!   exact. Duplicate keys are rejected at parse time.
//! * **Numbers are `f64` and render with `{:?}`**, Rust's
//!   shortest-round-trip formatting, so a finite value survives
//!   render→parse bit for bit. Non-finite numbers cannot be represented
//!   (plain JSON has no `Infinity`); the protocol carries exact bits in a
//!   separate hex field where they matter (see
//!   [`crate::protocol`]).
//!
//! Parsing is hardened for untrusted network input: nesting depth is
//! capped (a deeply nested `[[[[…]]]]` line cannot blow the stack) and
//! every error carries the byte offset it was detected at.

use std::fmt;

/// Maximum nesting depth accepted by the parser. Deeper input is an
/// error, not a stack overflow — lines come from untrusted sockets.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always an `f64`; the protocol's integers are
    /// small enough to be exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what was wrong and the byte offset where it was
/// detected.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON value from `input` (the whole string must be
    /// consumed apart from trailing whitespace).
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed input, duplicate object keys, nesting
    /// deeper than an internal bound, or trailing garbage.
    ///
    /// ```
    /// use sppl_serve::json::Json;
    ///
    /// let v = Json::parse(r#"{"op":"stats","id":7}"#).unwrap();
    /// assert_eq!(v.get("op").and_then(Json::as_str), Some("stats"));
    /// assert_eq!(v.get("id").and_then(Json::as_f64), Some(7.0));
    /// ```
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Renders the value as compact single-line JSON (no spaces), the
    /// wire form. Finite numbers use shortest-round-trip formatting;
    /// non-finite numbers render as `null`.
    ///
    /// ```
    /// use sppl_serve::json::Json;
    ///
    /// let v = Json::Obj(vec![("ok".into(), Json::Bool(true))]);
    /// assert_eq!(v.render(), r#"{"ok":true}"#);
    /// assert_eq!(Json::parse(&v.render()).unwrap(), v);
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => push_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_escaped(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            at: self.at,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Multi-byte UTF-8: the input is a &str, so raw bytes are
                // valid UTF-8 — copy the full code point through.
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Walk back one byte and take the whole code point.
                    self.at -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty by peek");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hex4 = |p: &mut Parser<'a>| -> Result<u32, JsonError> {
            let end = p.at + 4;
            if end > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.at..end])
                .map_err(|_| p.err("invalid \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| p.err("invalid \\u escape"))?;
            p.at = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        // Surrogate pair handling: a high surrogate must be followed by
        // an escaped low surrogate.
        if (0xd800..0xdc00).contains(&hi) {
            if self.peek() == Some(b'\\') && self.bytes.get(self.at + 1) == Some(&b'u') {
                self.at += 2;
                let lo = hex4(self)?;
                if (0xdc00..0xe000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xdc00..0xe000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (src, want) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Num(0.0)),
            ("-12.5e-2", Json::Num(-0.125)),
            (r#""hi \"there\"\n""#, Json::Str("hi \"there\"\n".into())),
        ] {
            let v = Json::parse(src).unwrap();
            assert_eq!(v, want, "{src}");
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn shortest_round_trip_floats_are_exact() {
        for x in [0.1, -1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0] {
            let rendered = Json::Num(x).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {rendered}");
        }
    }

    #[test]
    fn nonfinite_renders_null() {
        assert_eq!(Json::Num(f64::NEG_INFINITY).render(), "null");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn objects_preserve_order_and_reject_duplicates() {
        let v = Json::parse(r#"{"b":1,"a":2}"#).unwrap();
        assert_eq!(v.render(), r#"{"b":1.0,"a":2.0}"#);
        assert!(Json::parse(r#"{"a":1,"a":2}"#).is_err());
    }

    #[test]
    fn nested_structures() {
        let v = Json::parse(r#"{"xs":[1,[2,{"y":null}],"s"],"t":true}"#).unwrap();
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""é😀""#).unwrap(), Json::Str("é😀".into()));
        assert!(Json::parse(r#""\ud800""#).is_err(), "lone surrogate");
        // Raw multi-byte UTF-8 passes through unescaped.
        let v = Json::parse("\"héllo\"").unwrap();
        assert_eq!(v, Json::Str("héllo".into()));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for src in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\u{1}",
        ] {
            let err = Json::parse(src).unwrap_err();
            assert!(!err.message.is_empty(), "{src}: {err}");
        }
    }

    #[test]
    fn depth_bound_is_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
        // …but reasonable nesting is fine.
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }
}
