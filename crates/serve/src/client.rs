//! A minimal blocking client for the wire protocol: one connection, one
//! request in flight, typed helpers over [`Request`]/[`Response`].
//!
//! Used by `serve_bench`'s load-generator threads and the CI smoke test;
//! also convenient in examples. Each call sends one line, reads one
//! line, and checks the echoed correlation id.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use sppl_core::digest::ModelDigest;

use crate::protocol::{Request, Response, StatsSnapshot, WireError, WireEvent, WireOutcome};

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

fn io_error(e: std::io::Error) -> WireError {
    WireError::new("io", e.to_string())
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// I/O errors from the connection attempt.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// [`WireError`] for transport failures (`io` kind), undecodable
    /// replies, or a mismatched correlation id. A *protocol*-level
    /// failure is `Ok(Response::Error(..))`, not `Err` — use the typed
    /// helpers to fold it in.
    pub fn call(&mut self, request: &Request) -> Result<Response, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        let mut line = request.encode(Some(id));
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(io_error)?;
        let mut reply = String::new();
        let read = self.reader.read_line(&mut reply).map_err(io_error)?;
        if read == 0 {
            return Err(WireError::new("io", "server closed the connection"));
        }
        let (echoed, response) = Response::decode(&reply)?;
        if echoed != Some(id) {
            return Err(WireError::new(
                "io",
                format!("response id {echoed:?} does not match request id {id}"),
            ));
        }
        Ok(response)
    }

    fn expect<T>(
        &mut self,
        request: &Request,
        take: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, WireError> {
        let response = self.call(request)?;
        if let Response::Error(e) = response {
            return Err(e);
        }
        take(response).ok_or_else(|| WireError::new("io", "unexpected response shape"))
    }

    /// `register`: compile + retain; returns (digest, vars, fresh).
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`].
    pub fn register(
        &mut self,
        source: &str,
    ) -> Result<(ModelDigest, Vec<String>, bool), WireError> {
        self.expect(
            &Request::Register {
                source: source.to_string(),
            },
            |r| match r {
                Response::Compiled {
                    digest,
                    vars,
                    fresh,
                } => Some((digest, vars, fresh.unwrap_or(false))),
                _ => None,
            },
        )
    }

    /// `compile`: check only; returns (digest, vars).
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`].
    pub fn compile(&mut self, source: &str) -> Result<(ModelDigest, Vec<String>), WireError> {
        self.expect(
            &Request::Compile {
                source: source.to_string(),
            },
            |r| match r {
                Response::Compiled { digest, vars, .. } => Some((digest, vars)),
                _ => None,
            },
        )
    }

    /// `lookup`: returns the registered scope, or `None` when unknown.
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`].
    pub fn lookup(&mut self, model: ModelDigest) -> Result<Option<Vec<String>>, WireError> {
        self.expect(&Request::Lookup { model }, |r| match r {
            Response::Found { found: true, vars } => Some(Some(vars)),
            Response::Found { found: false, .. } => Some(None),
            _ => None,
        })
    }

    fn query(
        &mut self,
        model: ModelDigest,
        events: Vec<WireEvent>,
        single: bool,
        prob: bool,
    ) -> Result<Vec<f64>, WireError> {
        self.expect(
            &Request::Query {
                model,
                events,
                single,
                prob,
            },
            |r| match r {
                Response::Values { values, .. } => Some(values),
                _ => None,
            },
        )
    }

    /// Single-event `logprob`; bit-exact over the wire.
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`].
    pub fn logprob(&mut self, model: ModelDigest, event: &WireEvent) -> Result<f64, WireError> {
        Ok(self.query(model, vec![event.clone()], true, false)?[0])
    }

    /// Single-event `prob`; bit-exact over the wire.
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`].
    pub fn prob(&mut self, model: ModelDigest, event: &WireEvent) -> Result<f64, WireError> {
        Ok(self.query(model, vec![event.clone()], true, true)?[0])
    }

    /// Batched `logprob`.
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`].
    pub fn logprob_many(
        &mut self,
        model: ModelDigest,
        events: &[WireEvent],
    ) -> Result<Vec<f64>, WireError> {
        self.query(model, events.to_vec(), false, false)
    }

    /// Batched `prob`.
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`].
    pub fn prob_many(
        &mut self,
        model: ModelDigest,
        events: &[WireEvent],
    ) -> Result<Vec<f64>, WireError> {
        self.query(model, events.to_vec(), false, true)
    }

    fn posterior(&mut self, request: &Request) -> Result<(ModelDigest, bool), WireError> {
        self.expect(request, |r| match r {
            Response::Posterior { digest, fresh } => Some((digest, fresh)),
            _ => None,
        })
    }

    /// `condition`: returns the registered posterior's digest and
    /// whether it was fresh.
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`] (`query` kind on
    /// zero-probability events).
    pub fn condition(
        &mut self,
        model: ModelDigest,
        event: &WireEvent,
    ) -> Result<(ModelDigest, bool), WireError> {
        self.posterior(&Request::Condition {
            model,
            event: event.clone(),
        })
    }

    /// `condition_chain`: posterior of the whole chain.
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`].
    pub fn condition_chain(
        &mut self,
        model: ModelDigest,
        events: &[WireEvent],
    ) -> Result<(ModelDigest, bool), WireError> {
        self.posterior(&Request::ConditionChain {
            model,
            events: events.to_vec(),
        })
    }

    /// `constrain`: posterior under measure-zero observations.
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`].
    pub fn constrain(
        &mut self,
        model: ModelDigest,
        assignment: &BTreeMap<String, WireOutcome>,
    ) -> Result<(ModelDigest, bool), WireError> {
        self.posterior(&Request::Constrain {
            model,
            assignment: assignment.clone(),
        })
    }

    /// `export`: the registered model's SPE wire payload, ready to ship
    /// to another server's `import`.
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`] (`unknown_model` for an
    /// unregistered digest).
    pub fn export(&mut self, model: ModelDigest) -> Result<(ModelDigest, Vec<u8>), WireError> {
        self.expect(&Request::Export { model }, |r| match r {
            Response::Exported { digest, spe } => Some((digest, spe)),
            _ => None,
        })
    }

    /// `import`: registers a compiled SPE shipped as a wire payload —
    /// zero translations server-side; returns (digest, vars, fresh).
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`] (`import` kind when the
    /// payload fails wire validation).
    pub fn import(&mut self, spe: &[u8]) -> Result<(ModelDigest, Vec<String>, bool), WireError> {
        self.expect(&Request::Import { spe: spe.to_vec() }, |r| match r {
            Response::Compiled {
                digest,
                vars,
                fresh,
            } => Some((digest, vars, fresh.unwrap_or(false))),
            _ => None,
        })
    }

    /// `stats`: the server's counters.
    ///
    /// # Errors
    ///
    /// Protocol or transport [`WireError`].
    pub fn stats(&mut self) -> Result<StatsSnapshot, WireError> {
        self.expect(&Request::Stats, |r| match r {
            Response::Stats(s) => Some(s),
            _ => None,
        })
    }
}
