//! Snapshot rotation: generation-numbered cache snapshots with GC and a
//! corruption-tolerant loader.
//!
//! The background saver never overwrites the snapshot it would fall back
//! to. Each save goes to a fresh *generation* file — `<base>.gNNNNNN`,
//! written through [`SharedCache::save_snapshot`]'s atomic
//! tmp-then-rename path — and old generations are garbage-collected
//! afterwards, keeping the newest few. A crash at any point (mid-write,
//! between write and GC, mid-GC) therefore leaves at least one complete
//! earlier generation on disk, and [`SnapshotRotation::load_newest`]
//! walks generations newest-first past any corrupt or truncated file to
//! the most recent loadable one. A plain (rotation-less) `<base>` file
//! from an older run still loads, as the final fallback.

use std::path::{Path, PathBuf};

use sppl_core::{SharedCache, SpplError};

/// Rotating snapshot files around one base path.
///
/// ```
/// use sppl_core::SharedCache;
/// use sppl_serve::snapshot::SnapshotRotation;
///
/// let dir = std::env::temp_dir().join("sppl-serve-rotation-doc");
/// std::fs::create_dir_all(&dir).unwrap();
/// let rotation = SnapshotRotation::new(dir.join("cache.snap"), 2);
///
/// let cache = SharedCache::new(64);
/// let (gen1, _) = rotation.save(&cache).unwrap();
/// let (gen2, _) = rotation.save(&cache).unwrap();
/// assert!(gen2 > gen1);
///
/// let warm = SharedCache::new(64);
/// let (path, _) = rotation.load_newest(&warm).unwrap();
/// assert_eq!(path, rotation.generation_path(gen2));
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotRotation {
    base: PathBuf,
    keep: usize,
}

impl SnapshotRotation {
    /// Rotation around `base`, keeping the newest `keep` generations
    /// (minimum 1).
    pub fn new(base: impl Into<PathBuf>, keep: usize) -> SnapshotRotation {
        SnapshotRotation {
            base: base.into(),
            keep: keep.max(1),
        }
    }

    /// The base path generations are derived from.
    pub fn base(&self) -> &Path {
        &self.base
    }

    /// The path of generation `gen`: `<base>.gNNNNNN`.
    pub fn generation_path(&self, gen: u64) -> PathBuf {
        let name = self
            .base
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        self.base.with_file_name(format!("{name}.g{gen:06}"))
    }

    /// Existing generation files, sorted oldest first.
    pub fn generations(&self) -> Vec<(u64, PathBuf)> {
        let Some(base_name) = self
            .base
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
        else {
            return Vec::new();
        };
        let parent = match self.base.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let prefix = format!("{base_name}.g");
        let mut found = Vec::new();
        let Ok(entries) = std::fs::read_dir(parent) else {
            return Vec::new();
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(suffix) = name.strip_prefix(&prefix) else {
                continue;
            };
            // Generation files end in digits only; `.tmp` staging files
            // and anything else are not generations.
            if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(gen) = suffix.parse::<u64>() {
                    found.push((gen, entry.path()));
                }
            }
        }
        found.sort();
        found
    }

    /// Writes the next generation (atomically, via
    /// [`SharedCache::save_snapshot`]) and garbage-collects old ones,
    /// returning the new generation number and how many entries it holds.
    /// GC failures are swallowed — an undeleted old generation is merely
    /// disk, never a correctness problem.
    ///
    /// # Errors
    ///
    /// [`SpplError::Snapshot`] when the new generation cannot be written;
    /// existing generations are untouched.
    pub fn save(&self, cache: &SharedCache) -> Result<(u64, usize), SpplError> {
        let next = self.generations().last().map_or(1, |(gen, _)| gen + 1);
        let written = cache.save_snapshot(self.generation_path(next))?;
        self.gc();
        Ok((next, written))
    }

    /// Removes all but the newest `keep` generations, plus any stale
    /// `.tmp` staging files a crashed saver left behind. Best-effort.
    pub fn gc(&self) {
        let generations = self.generations();
        if generations.len() > self.keep {
            for (_, path) in &generations[..generations.len() - self.keep] {
                let _ = std::fs::remove_file(path);
            }
        }
        for (_, path) in self.generations() {
            let mut tmp = path.into_os_string();
            tmp.push(".tmp");
            let _ = std::fs::remove_file(PathBuf::from(tmp));
        }
        // A staging file for the *next* generation (crash mid-save).
        let next = self.generations().last().map_or(1, |(gen, _)| gen + 1);
        let mut tmp = self.generation_path(next).into_os_string();
        tmp.push(".tmp");
        let _ = std::fs::remove_file(PathBuf::from(tmp));
    }

    /// Loads the newest loadable snapshot into `cache`, walking
    /// generations newest-first past corrupt or unreadable files, then
    /// falling back to the bare `<base>` path. Returns the path loaded
    /// and its entry count, or `None` when nothing loadable exists — a
    /// cold start, never an error.
    pub fn load_newest(&self, cache: &SharedCache) -> Option<(PathBuf, usize)> {
        for (_, path) in self.generations().into_iter().rev() {
            if let Ok(loaded) = cache.load_snapshot(&path) {
                return Some((path, loaded));
            }
        }
        if let Ok(loaded) = cache.load_snapshot(&self.base) {
            return Some((self.base.clone(), loaded));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sppl_core::digest::{Fingerprint, ModelDigest};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sppl-serve-snapshot-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seeded_cache(values: &[(u128, f64)]) -> SharedCache {
        let cache = SharedCache::new(1024);
        for (k, v) in values {
            cache.insert(
                ModelDigest::from_u128(*k),
                Fingerprint::from_u128(*k ^ 7),
                *v,
            );
        }
        cache
    }

    #[test]
    fn generations_rotate_and_gc() {
        let dir = scratch_dir("rotate");
        let rotation = SnapshotRotation::new(dir.join("cache.snap"), 2);
        let cache = seeded_cache(&[(1, -0.5), (2, -1.5)]);
        for expected in 1..=4u64 {
            let (gen, written) = rotation.save(&cache).unwrap();
            assert_eq!(gen, expected);
            assert_eq!(written, 2);
        }
        let generations: Vec<u64> = rotation.generations().iter().map(|(g, _)| *g).collect();
        assert_eq!(generations, vec![3, 4], "GC keeps the newest two");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_newest_skips_corrupt_generations() {
        let dir = scratch_dir("corrupt");
        let rotation = SnapshotRotation::new(dir.join("cache.snap"), 3);
        let cache = seeded_cache(&[(9, -2.25)]);
        rotation.save(&cache).unwrap(); // g1, complete
                                        // g2 "crashed mid-write": truncated garbage at the final path.
        std::fs::write(rotation.generation_path(2), b"SPPLSNAPgarbage").unwrap();
        // g3 only reached its staging file.
        std::fs::write(dir.join("cache.snap.g000003.tmp"), b"partial").unwrap();

        let warm = SharedCache::new(1024);
        let (path, loaded) = rotation.load_newest(&warm).unwrap();
        assert_eq!(path, rotation.generation_path(1));
        assert_eq!(loaded, 1);
        assert_eq!(
            warm.probe(ModelDigest::from_u128(9), Fingerprint::from_u128(9 ^ 7)),
            Some(-2.25)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bare_base_is_the_final_fallback() {
        let dir = scratch_dir("bare");
        let rotation = SnapshotRotation::new(dir.join("cache.snap"), 2);
        let cache = seeded_cache(&[(4, -0.75)]);
        cache.save_snapshot(dir.join("cache.snap")).unwrap();
        let warm = SharedCache::new(1024);
        let (path, loaded) = rotation.load_newest(&warm).unwrap();
        assert_eq!(path, dir.join("cache.snap"));
        assert_eq!(loaded, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nothing_loadable_is_a_cold_start() {
        let dir = scratch_dir("cold");
        let rotation = SnapshotRotation::new(dir.join("cache.snap"), 2);
        let warm = SharedCache::new(64);
        assert!(rotation.load_newest(&warm).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_stale_tmp_files() {
        let dir = scratch_dir("tmp");
        let rotation = SnapshotRotation::new(dir.join("cache.snap"), 2);
        let cache = seeded_cache(&[(5, -1.0)]);
        rotation.save(&cache).unwrap();
        let stale = dir.join("cache.snap.g000001.tmp");
        std::fs::write(&stale, b"leftover").unwrap();
        rotation.gc();
        assert!(!stale.exists());
        assert!(rotation.generation_path(1).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
