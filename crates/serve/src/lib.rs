//! `sppl-serve`: a std-only concurrent query server for SPPL models.
//!
//! The PLDI 2021 closure theorem makes posteriors first-class models;
//! this crate serves that capability to concurrent clients over a
//! line-delimited JSON protocol (see [`protocol`]): register a program
//! once, query forever by content digest — `logprob`/`prob` (single and
//! batch), `condition`/`condition_chain`/`constrain` returning posterior
//! digests, and `stats`.
//!
//! Three layers do the serving work:
//!
//! - [`dispatch`]: request **coalescing** (concurrent identical queries
//!   dedupe into one evaluation via a singleflight slot map) under
//!   **batching windows** (queries in a short window merge into one
//!   `par_logprob_many` batch) — every answer bit-identical to a direct
//!   [`Model`](sppl_core::Model) call;
//! - [`registry`]: the digest → model map shared by every connection,
//!   all models attached to one process-wide
//!   [`SharedCache`](sppl_core::SharedCache);
//! - [`snapshot`]: generation-rotated cache snapshots with GC, a warm
//!   start that walks past corrupt files, and crash-safe atomic writes.
//!
//! [`server::Server`] wires them behind a fixed accept/worker TCP
//! front-end; [`client::Client`] is the matching blocking client.
//!
//! ```
//! use sppl_serve::client::Client;
//! use sppl_serve::protocol::WireEvent;
//! use sppl_serve::server::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! let (digest, vars, fresh) = client.register("X ~ normal(0, 1)").unwrap();
//! assert!(fresh);
//! assert_eq!(vars, vec!["X".to_string()]);
//!
//! let p = client.prob(digest, &WireEvent::le("X", 0.0)).unwrap();
//! assert!((p - 0.5).abs() < 1e-12);
//!
//! // Posteriors are served by digest too (closure under conditioning).
//! let (posterior, _) = client.condition(digest, &WireEvent::gt("X", 0.0)).unwrap();
//! let p = client.prob(posterior, &WireEvent::gt("X", 1.0)).unwrap();
//! assert!(p > 0.3 && p < 0.4);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod dispatch;
pub mod json;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod snapshot;

pub use client::Client;
pub use dispatch::{Dispatcher, ServeCounters};
pub use json::Json;
pub use protocol::{Request, Response, StatsSnapshot, WireError, WireEvent, WireOutcome};
pub use registry::ModelRegistry;
pub use server::{ServeConfig, Server, ServerState, SnapshotPolicy};
pub use snapshot::SnapshotRotation;
