//! The server: shared state, request handling, and the TCP front-end.
//!
//! One process-wide [`SharedCache`] and [`ModelRegistry`] back every
//! connection; queries route through the [`Dispatcher`]'s coalescing and
//! batching layers. The TCP layer is a fixed accept/worker architecture:
//! one accept thread feeds connections to `workers` pre-spawned handler
//! threads over a channel, each handler owning one connection at a time
//! and speaking the line-delimited protocol until EOF.
//!
//! [`ServerState::handle`] is the protocol brain and is fully usable
//! without any socket — tests (and in-process embedders) drive it
//! directly with [`Request`] values or raw lines.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use sppl_analyze::CompileCache;
use sppl_core::digest::ModelDigest;
use sppl_core::{serialize_spe, Model, SharedCache, SpplError};

use crate::dispatch::{Dispatcher, ServeCounters};
use crate::protocol::{to_assignment, Request, Response, StatsSnapshot, WireError};
use crate::registry::{scope_names, ModelRegistry};
use crate::snapshot::SnapshotRotation;

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How long a handler blocks on a quiet connection before re-checking
/// the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Background snapshot policy: where to rotate, how often, how many
/// generations to keep.
#[derive(Debug, Clone)]
pub struct SnapshotPolicy {
    /// Base snapshot path (generations are `<base>.gNNNNNN`).
    pub base: std::path::PathBuf,
    /// Interval between background saves.
    pub interval: Duration,
    /// Newest generations kept by GC.
    pub keep: usize,
}

/// Server configuration. `Default` serves on an ephemeral loopback port
/// with snapshotting off.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Connection-handler threads.
    pub workers: usize,
    /// Shared-cache entry bound.
    pub cache_capacity: usize,
    /// Registered-model bound (roots + posteriors).
    pub registry_capacity: usize,
    /// Batching-window length.
    pub batch_window: Duration,
    /// Maximum queries per window.
    pub max_batch: usize,
    /// Snapshot lifecycle, if any.
    pub snapshot: Option<SnapshotPolicy>,
    /// On-disk compile-cache directory. When set, compiled SPEs are
    /// persisted as wire payloads and warm-registered at boot, so a
    /// fresh process answers known digests with zero translations.
    pub compile_cache: Option<std::path::PathBuf>,
    /// Newest compile-cache payloads kept by GC (`0` = unbounded).
    pub compile_cache_keep: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            // Handlers spend their lives blocked on sockets and slots, so
            // the default deliberately exceeds small core counts — fewer
            // workers than concurrent connections serializes clients (and
            // with them, the coalescing opportunities).
            workers: sppl_core::default_threads().max(8),
            cache_capacity: 1 << 16,
            registry_capacity: 1024,
            batch_window: Duration::from_micros(500),
            max_batch: 64,
            snapshot: None,
            compile_cache: None,
            compile_cache_keep: 256,
        }
    }
}

/// Everything a request needs: cache, registry, dispatcher, counters.
/// Socket-free — see the [module docs](self).
pub struct ServerState {
    cache: Arc<SharedCache>,
    registry: ModelRegistry,
    dispatcher: Dispatcher,
    counters: Arc<ServeCounters>,
    compiler: CompileCache,
}

impl ServerState {
    /// Fresh state per `config` (the snapshot policy is the [`Server`]'s
    /// concern, not the state's). With a `compile_cache` directory
    /// configured, every valid payload already on disk is
    /// warm-registered — a restarted server answers known digests
    /// without a single translation. An unusable directory degrades to
    /// the in-memory tier (stderr note), never to a failed boot.
    pub fn new(config: &ServeConfig) -> ServerState {
        let counters = Arc::new(ServeCounters::new());
        let cache = Arc::new(SharedCache::new(config.cache_capacity));
        let mut compiler = CompileCache::new(config.registry_capacity.max(1)).share_factories(true);
        if let Some(dir) = &config.compile_cache {
            match compiler.with_dir(dir, config.compile_cache_keep) {
                Ok(with_disk) => compiler = with_disk,
                Err(e) => {
                    eprintln!("sppl-serve: compile cache disabled on disk: {e}");
                    compiler =
                        CompileCache::new(config.registry_capacity.max(1)).share_factories(true);
                }
            }
        }
        let registry = ModelRegistry::new(config.registry_capacity);
        for (_, model) in compiler.disk_models() {
            let _ = registry.register(model.with_shared_cache(Arc::clone(&cache)));
        }
        ServerState {
            cache,
            registry,
            dispatcher: Dispatcher::with_counters(
                config.batch_window,
                config.max_batch,
                Arc::clone(&counters),
            ),
            counters,
            compiler,
        }
    }

    /// The process-wide shared cache.
    pub fn cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// The model registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The serve counters.
    pub fn counters(&self) -> &Arc<ServeCounters> {
        &self.counters
    }

    /// Handles one raw wire line: decode, dispatch, encode. Never fails —
    /// malformed input becomes an error *response* (with the request's
    /// `id` echoed whenever it was readable).
    ///
    /// ```
    /// use sppl_serve::server::{ServeConfig, ServerState};
    ///
    /// let state = ServerState::new(&ServeConfig::default());
    /// let reply = state.handle_line(r#"{"op": "stats"}"#);
    /// assert!(reply.contains(r#""ok":true"#));
    /// let reply = state.handle_line("not json");
    /// assert!(reply.contains(r#""kind":"bad_request""#));
    /// ```
    pub fn handle_line(&self, line: &str) -> String {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (id, response) = match Request::decode(line) {
            Ok((id, request)) => (id, self.handle(&request)),
            Err((id, error)) => (id, Response::Error(error)),
        };
        if matches!(response, Response::Error(_)) {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        response.encode(id)
    }

    /// Handles one decoded request. Infallible by the same contract as
    /// [`handle_line`](ServerState::handle_line).
    pub fn handle(&self, request: &Request) -> Response {
        match self.dispatch(request) {
            Ok(response) => response,
            Err(error) => Response::Error(error),
        }
    }

    fn dispatch(&self, request: &Request) -> Result<Response, WireError> {
        match request {
            Request::Compile { source } => {
                let model = self.compile(source)?;
                Ok(Response::Compiled {
                    digest: model.model_digest(),
                    vars: scope_names(&model),
                    fresh: None,
                })
            }
            Request::Register { source } => {
                let model = self.compile(source)?;
                let (model, fresh) = self.registry.register(model)?;
                Ok(Response::Compiled {
                    digest: model.model_digest(),
                    vars: scope_names(&model),
                    fresh: Some(fresh),
                })
            }
            Request::Lookup { model } => Ok(match self.registry.get(*model) {
                Some(model) => Response::Found {
                    found: true,
                    vars: scope_names(&model),
                },
                None => Response::Found {
                    found: false,
                    vars: Vec::new(),
                },
            }),
            Request::Query {
                model,
                events,
                single,
                prob,
            } => {
                let model = self.model(*model)?;
                let mut values = Vec::with_capacity(events.len());
                for wire_event in events {
                    let event = wire_event.to_event()?;
                    let value = if *prob {
                        self.dispatcher.prob(&model, &event)
                    } else {
                        self.dispatcher.logprob(&model, &event)
                    };
                    values.push(value.map_err(query_error)?);
                }
                Ok(Response::Values {
                    values,
                    single: *single,
                })
            }
            Request::Condition { model, event } => {
                let model = self.model(*model)?;
                let event = event.to_event()?;
                let posterior = model.condition(&event).map_err(query_error)?;
                self.adopt(posterior)
            }
            Request::ConditionChain { model, events } => {
                let model = self.model(*model)?;
                let events = events
                    .iter()
                    .map(|e| e.to_event())
                    .collect::<Result<Vec<_>, _>>()?;
                let posterior = model.condition_chain(&events).map_err(query_error)?;
                self.adopt(posterior)
            }
            Request::Constrain { model, assignment } => {
                let model = self.model(*model)?;
                let assignment = to_assignment(assignment);
                let posterior = model.constrain(&assignment).map_err(query_error)?;
                self.adopt(posterior)
            }
            Request::Export { model } => {
                let model = self.model(*model)?;
                Ok(Response::Exported {
                    digest: model.model_digest(),
                    spe: serialize_spe(model.root()),
                })
            }
            Request::Import { spe } => {
                let model = self
                    .compiler
                    .admit(spe)
                    .map_err(|e| WireError::new("import", e.to_string()))?
                    .with_shared_cache(Arc::clone(&self.cache));
                let (model, fresh) = self.registry.register(model)?;
                Ok(Response::Compiled {
                    digest: model.model_digest(),
                    vars: scope_names(&model),
                    fresh: Some(fresh),
                })
            }
            Request::Stats => Ok(Response::Stats(self.stats_snapshot())),
        }
    }

    /// Compiles source through the two-tier compile cache and attaches
    /// the process-wide shared cache.
    fn compile(&self, source: &str) -> Result<Model, WireError> {
        match self.compiler.compile(source) {
            Ok(model) => Ok(model.with_shared_cache(Arc::clone(&self.cache))),
            Err(e) => Err(WireError::new("compile", e.to_string())),
        }
    }

    fn model(&self, digest: ModelDigest) -> Result<Arc<Model>, WireError> {
        self.registry.get(digest).ok_or_else(|| {
            WireError::new(
                "unknown_model",
                format!("no model registered under digest {digest}"),
            )
        })
    }

    /// Registers a freshly built posterior and reports its digest.
    fn adopt(&self, posterior: Model) -> Result<Response, WireError> {
        let digest = posterior.model_digest();
        let (_, fresh) = self.registry.register(posterior)?;
        Ok(Response::Posterior { digest, fresh })
    }

    /// The compile cache behind `compile`/`register`/`import`.
    pub fn compiler(&self) -> &CompileCache {
        &self.compiler
    }

    /// The counters the `stats` op reports.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let counters = &self.counters;
        let cache = self.cache.stats();
        let compiles = self.compiler.stats();
        StatsSnapshot {
            requests: counters.requests.load(Ordering::Relaxed),
            errors: counters.errors.load(Ordering::Relaxed),
            coalesced: counters.coalesced.load(Ordering::Relaxed),
            batches: counters.batches.load(Ordering::Relaxed),
            batched_queries: counters.batched_queries.load(Ordering::Relaxed),
            max_batch: counters.max_batch.load(Ordering::Relaxed),
            batch_hist: counters.hist_values(),
            models: self.registry.len() as u64,
            compile_cache_hits: compiles.hits,
            compile_cache_disk_hits: compiles.disk_hits,
            compile_cache_misses: compiles.misses,
            translations: compiles.translations,
            arena_batches: counters.arena_batches.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: cache.entries as u64,
            cache_evictions: self.cache.evictions(),
            snapshot_saves: counters.snapshot_saves.load(Ordering::Relaxed),
        }
    }
}

fn query_error(e: SpplError) -> WireError {
    WireError::new("query", e.to_string())
}

/// Coordinated shutdown: a flag plus a condvar the snapshot thread
/// sleeps on.
struct Shutdown {
    flag: AtomicBool,
    gate: Mutex<()>,
    wake: Condvar,
}

impl Shutdown {
    fn new() -> Shutdown {
        Shutdown {
            flag: AtomicBool::new(false),
            gate: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    fn is_set(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    fn set(&self) {
        self.flag.store(true, Ordering::Release);
        self.wake.notify_all();
    }

    /// Sleeps up to `timeout`; returns early when shutdown is set.
    fn sleep(&self, timeout: Duration) {
        let guard = lock(&self.gate);
        if self.is_set() {
            return;
        }
        let _ = self
            .wake
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// A running server: bound listener, accept/worker threads, and the
/// optional background snapshot saver.
///
/// ```no_run
/// use sppl_serve::client::Client;
/// use sppl_serve::server::{ServeConfig, Server};
///
/// let server = Server::start(ServeConfig::default()).unwrap();
/// let mut client = Client::connect(server.local_addr()).unwrap();
/// let (digest, _, _) = client.register("X ~ normal(0, 1)").unwrap();
/// println!("registered {digest}");
/// server.shutdown();
/// ```
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    shutdown: Arc<Shutdown>,
    rotation: Option<SnapshotRotation>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    saver: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, warm-starts the cache from the newest snapshot (when a
    /// policy is configured), and spawns the accept, worker, and saver
    /// threads.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let state = Arc::new(ServerState::new(&config));
        let shutdown = Arc::new(Shutdown::new());
        let rotation = config
            .snapshot
            .as_ref()
            .map(|policy| SnapshotRotation::new(policy.base.clone(), policy.keep));
        if let Some(rotation) = &rotation {
            // Warm start; a corrupt or absent snapshot is a cold start.
            let _ = rotation.load_newest(state.cache());
        }

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (tx, rx) = std::sync::mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let shutdown = Arc::clone(&shutdown);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(&state, &shutdown, &rx))
            })
            .collect();

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || accept_loop(&listener, &shutdown, &tx))
        };

        let saver = match (&rotation, &config.snapshot) {
            (Some(rotation), Some(policy)) => {
                let rotation = rotation.clone();
                let interval = policy.interval;
                let state = Arc::clone(&state);
                let shutdown = Arc::clone(&shutdown);
                Some(std::thread::spawn(move || loop {
                    shutdown.sleep(interval);
                    if shutdown.is_set() {
                        break;
                    }
                    if rotation.save(state.cache()).is_ok() {
                        state
                            .counters()
                            .snapshot_saves
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }))
            }
            _ => None,
        };

        Ok(Server {
            state,
            addr,
            shutdown,
            rotation,
            accept: Some(accept),
            workers,
            saver,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared protocol state (for in-process inspection).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops accepting, drains the threads, and writes a final snapshot
    /// generation (when a policy is configured). Open connections are
    /// closed.
    pub fn shutdown(mut self) {
        self.stop_threads();
        if let Some(rotation) = self.rotation.take() {
            if rotation.save(self.state.cache()).is_ok() {
                self.state
                    .counters()
                    .snapshot_saves
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn stop_threads(&mut self) {
        self.shutdown.set();
        // The accept thread is parked in `accept()`; a throwaway
        // connection wakes it so it can observe the flag and exit
        // (dropping the channel sender, which in turn drains the workers).
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(saver) = self.saver.take() {
            let _ = saver.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn accept_loop(listener: &TcpListener, shutdown: &Shutdown, tx: &Sender<TcpStream>) {
    for stream in listener.incoming() {
        if shutdown.is_set() {
            break;
        }
        let Ok(stream) = stream else { continue };
        if tx.send(stream).is_err() {
            break;
        }
    }
}

fn worker_loop(state: &ServerState, shutdown: &Shutdown, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Hold the receiver lock only while dequeuing; idle workers queue
        // on the mutex, and each arriving connection wakes exactly one.
        let conn = lock(rx).recv();
        match conn {
            Ok(stream) => {
                let _ = handle_connection(state, shutdown, stream);
            }
            Err(_) => break, // Accept thread exited; no more connections.
        }
    }
}

/// Speaks the protocol on one connection until EOF, a hard I/O error, or
/// shutdown. The read timeout bounds how long shutdown waits for a quiet
/// connection.
fn handle_connection(
    state: &ServerState,
    shutdown: &Shutdown,
    stream: TcpStream,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        if shutdown.is_set() {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // EOF
            Ok(_) => {
                if !line.trim().is_empty() {
                    let response = state.handle_line(&line);
                    writer.write_all(response.as_bytes())?;
                    writer.write_all(b"\n")?;
                    writer.flush()?;
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Quiet connection; `line` keeps any partial data.
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}
