//! The model registry: digest → compiled [`Model`], the register-once /
//! query-by-digest half of the protocol.
//!
//! Roots and posteriors live in the same map — `condition` registers the
//! posterior it builds and hands back its digest, so a client can chain
//! observations server-side without ever holding a `Model`. Every
//! registered model shares the server's one
//! [`SharedCache`](sppl_core::SharedCache), which is what makes
//! digest-keyed caching and coalescing sound across clients.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use sppl_core::digest::ModelDigest;
use sppl_core::Model;

use crate::protocol::WireError;

/// A bounded, thread-safe map from content digest to compiled model.
///
/// Registration is first-write-wins and idempotent: registering a model
/// whose digest is already present returns the *existing* entry (the
/// compiled forms are interchangeable — the digest is a deep content
/// hash), reports `fresh = false`, and drops the new copy.
///
/// ```
/// use sppl_analyze::compile_model;
/// use sppl_serve::registry::ModelRegistry;
///
/// let registry = ModelRegistry::new(16);
/// let model = compile_model("X ~ bernoulli(p=0.5)").unwrap();
/// let digest = model.model_digest();
/// let (_, fresh) = registry.register(model).unwrap();
/// assert!(fresh);
/// assert!(registry.get(digest).is_some());
/// ```
pub struct ModelRegistry {
    capacity: usize,
    models: Mutex<HashMap<ModelDigest, Arc<Model>>>,
}

impl ModelRegistry {
    /// An empty registry holding at most `capacity` models (minimum 1).
    pub fn new(capacity: usize) -> ModelRegistry {
        ModelRegistry {
            capacity: capacity.max(1),
            models: Mutex::new(HashMap::new()),
        }
    }

    /// Registers `model` under its own digest, returning the retained
    /// handle and whether the digest was new.
    ///
    /// # Errors
    ///
    /// [`WireError`] (`registry_full`) when the registry is at capacity
    /// and the digest is not already present.
    pub fn register(&self, model: Model) -> Result<(Arc<Model>, bool), WireError> {
        let digest = model.model_digest();
        let mut models = self.lock();
        if let Some(existing) = models.get(&digest) {
            return Ok((Arc::clone(existing), false));
        }
        if models.len() >= self.capacity {
            return Err(WireError::new(
                "registry_full",
                format!("registry holds its maximum of {} models", self.capacity),
            ));
        }
        let model = Arc::new(model);
        models.insert(digest, Arc::clone(&model));
        Ok((model, true))
    }

    /// The model registered under `digest`, if any.
    pub fn get(&self, digest: ModelDigest) -> Option<Arc<Model>> {
        self.lock().get(&digest).map(Arc::clone)
    }

    /// How many models are registered.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The registry's capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<ModelDigest, Arc<Model>>> {
        self.models.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sorted variable names in `model`'s scope — the `vars` field of
/// `compile`/`register`/`lookup` responses.
pub fn scope_names(model: &Model) -> Vec<String> {
    model
        .root()
        .scope()
        .iter()
        .map(|v| v.name().to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sppl_analyze::compile_model;

    #[test]
    fn register_is_idempotent() {
        let registry = ModelRegistry::new(4);
        let a = compile_model("X ~ normal(0, 1)").unwrap();
        let digest = a.model_digest();
        let (_, fresh) = registry.register(a).unwrap();
        assert!(fresh);
        let b = compile_model("X ~ normal(0, 1)").unwrap();
        assert_eq!(b.model_digest(), digest);
        let (_, fresh) = registry.register(b).unwrap();
        assert!(!fresh);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn capacity_is_enforced_but_existing_digests_pass() {
        let registry = ModelRegistry::new(1);
        let a = compile_model("X ~ bernoulli(p=0.25)").unwrap();
        registry.register(a).unwrap();
        let err = registry
            .register(compile_model("Y ~ bernoulli(p=0.75)").unwrap())
            .unwrap_err();
        assert_eq!(err.kind, "registry_full");
        // Same digest still registers (idempotent path skips the bound).
        let again = compile_model("X ~ bernoulli(p=0.25)").unwrap();
        let (_, fresh) = registry.register(again).unwrap();
        assert!(!fresh);
    }

    #[test]
    fn scope_names_are_sorted() {
        let m = compile_model("B ~ normal(0, 1)\nA ~ bernoulli(p=0.5)").unwrap();
        assert_eq!(scope_names(&m), vec!["A".to_string(), "B".to_string()]);
    }
}
