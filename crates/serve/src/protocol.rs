//! The wire protocol: line-delimited JSON requests and responses.
//!
//! Every message is one JSON object on one `\n`-terminated line. A
//! request names its operation in `"op"` and may carry a numeric `"id"`,
//! echoed verbatim in the response so pipelined clients can correlate.
//! Responses always carry `"ok"`; failures carry a structured
//! `"error": {"kind", "message"}` instead of result fields.
//!
//! # Operations
//!
//! | op | request fields | response fields |
//! |---|---|---|
//! | `compile` | `source` | `digest`, `vars` (compile check only — not retained) |
//! | `register` | `source` | `digest`, `vars`, `fresh` (retained; idempotent) |
//! | `lookup` | `model` | `found`, `vars` when found |
//! | `logprob` / `prob` | `model`, `event` *or* `events` | `value`+`bits` *or* `values`+`bits` |
//! | `condition` | `model`, `event` | `posterior`, `fresh` |
//! | `condition_chain` | `model`, `events` | `posterior`, `fresh` |
//! | `constrain` | `model`, `assignment` | `posterior`, `fresh` |
//! | `export` | `model` | `digest`, `spe` (hex wire payload) |
//! | `import` | `spe` | `digest`, `vars`, `fresh` (registered; idempotent) |
//! | `stats` | — | counters (see [`Response::Stats`]) |
//!
//! `export`/`import` ship *compiled* models: `export` returns the
//! [SPE wire format](sppl_core::wire) payload of a registered model as
//! hex, and `import` registers such a payload without any source text —
//! register-once now works across nodes without resending (or even
//! having) the program. The payload is checksummed and digest-verified
//! end to end, so an import either reproduces the exact digest it was
//! exported under or fails closed.
//!
//! Model identity is the 32-hex-digit [`ModelDigest`] — the same
//! content digest that keys the
//! [`SharedCache`](sppl_core::SharedCache) — so clients register a model
//! **once** and query by digest forever after; posteriors returned by
//! `condition`/`constrain` are registered under *their* digests and are
//! queried (and further conditioned) exactly like root models.
//!
//! # Exact values on a text wire
//!
//! Probabilities are `f64`s whose **bits** matter (the server's contract
//! is bit-identity with in-process [`Model`](sppl_core::Model) calls),
//! and JSON has no ±∞. Every value therefore travels twice: a
//! human-readable decimal in `value` (shortest-round-trip, `null` when
//! non-finite) and the authoritative bits in `bits` as 16 hex digits.
//! Decoders use `bits`.
//!
//! # Events on the wire
//!
//! [`WireEvent`] mirrors the fluent event DSL on *base variables*:
//! comparisons, interval and string-set containment, and `and`/`or`/
//! `not` combinators. (Events over transformed variables — `X² < 4` —
//! are not yet expressible on the wire; open a session in-process for
//! those.) Example: `{"and": [{"var": "GPA", "cmp": "le", "value": 4.0},
//! {"not": {"var": "Nationality", "eq": "India"}}]}`.

use std::collections::BTreeMap;

use sppl_core::density::Assignment;
use sppl_core::digest::{Fingerprint, ModelDigest};
use sppl_core::event::var;
use sppl_core::{Event, Var};
use sppl_sets::{Interval, Outcome};

use crate::json::Json;

/// A structured protocol failure, carried in error responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable kind: one of `bad_request`, `compile`,
    /// `unknown_model`, `query`, `registry_full`, `import`, `internal`
    /// (all server-sent), or `io` (client-side transport failure).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    /// Builds an error of the given kind.
    pub fn new(kind: &str, message: impl Into<String>) -> WireError {
        WireError {
            kind: kind.to_string(),
            message: message.into(),
        }
    }

    /// A `bad_request` error (malformed JSON, missing/ill-typed fields).
    pub fn bad_request(message: impl Into<String>) -> WireError {
        WireError::new("bad_request", message)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.kind, self.message)
    }
}

impl std::error::Error for WireError {}

/// An event as expressed on the wire: the DSL surface over base
/// variables plus combinators. Convert to a queryable [`Event`] with
/// [`WireEvent::to_event`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// `{"var": v, "cmp": "lt|le|gt|ge", "value": x}`.
    Cmp {
        /// Variable name.
        var: String,
        /// One of `lt`, `le`, `gt`, `ge`.
        cmp: Cmp,
        /// Comparison threshold.
        value: f64,
    },
    /// `{"var": v, "eq": x}` — `x` a number or string.
    EqReal(String, f64),
    /// `{"var": v, "eq": "s"}`.
    EqStr(String, String),
    /// `{"var": v, "ne": x}` — negated equality.
    NeReal(String, f64),
    /// `{"var": v, "ne": "s"}`.
    NeStr(String, String),
    /// `{"var": v, "in": {"lo": a|null, "hi": b|null, "lo_closed": …, "hi_closed": …}}`
    /// (`null` endpoints mean ∓∞).
    InInterval {
        /// Variable name.
        var: String,
        /// Lower endpoint (−∞ when the wire said `null`).
        lo: f64,
        /// Whether the lower endpoint is included.
        lo_closed: bool,
        /// Upper endpoint (+∞ when the wire said `null`).
        hi: f64,
        /// Whether the upper endpoint is included.
        hi_closed: bool,
    },
    /// `{"var": v, "one_of": ["a", "b", …]}`.
    OneOf(String, Vec<String>),
    /// `{"and": […]}`; empty is the trivially true event.
    And(Vec<WireEvent>),
    /// `{"or": […]}`; empty is the trivially false event.
    Or(Vec<WireEvent>),
    /// `{"not": …}`.
    Not(Box<WireEvent>),
}

/// Comparison operators for [`WireEvent::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Cmp {
    fn name(self) -> &'static str {
        match self {
            Cmp::Lt => "lt",
            Cmp::Le => "le",
            Cmp::Gt => "gt",
            Cmp::Ge => "ge",
        }
    }

    fn parse(s: &str) -> Option<Cmp> {
        Some(match s {
            "lt" => Cmp::Lt,
            "le" => Cmp::Le,
            "gt" => Cmp::Gt,
            "ge" => Cmp::Ge,
            _ => return None,
        })
    }
}

impl WireEvent {
    /// Converts the wire form into the core [`Event`] the evaluator (and
    /// the cache keys) understand. The conversion is the *same* DSL call
    /// a direct in-process caller would make, so a served answer is
    /// bit-identical to the corresponding [`Model`](sppl_core::Model)
    /// call on the same `WireEvent`.
    ///
    /// # Errors
    ///
    /// [`WireError`] (`bad_request`) on a NaN endpoint or an empty
    /// interval.
    ///
    /// ```
    /// use sppl_core::event::var;
    /// use sppl_serve::protocol::WireEvent;
    ///
    /// let we = WireEvent::And(vec![
    ///     WireEvent::le("GPA", 4.0),
    ///     WireEvent::eq_str("Nationality", "India"),
    /// ]);
    /// assert_eq!(
    ///     we.to_event().unwrap(),
    ///     var("GPA").le(4.0) & var("Nationality").eq("India"),
    /// );
    /// ```
    pub fn to_event(&self) -> Result<Event, WireError> {
        Ok(match self {
            WireEvent::Cmp { var: v, cmp, value } => {
                if value.is_nan() {
                    return Err(WireError::bad_request("comparison against NaN"));
                }
                match cmp {
                    Cmp::Lt => var(v).lt(*value),
                    Cmp::Le => var(v).le(*value),
                    Cmp::Gt => var(v).gt(*value),
                    Cmp::Ge => var(v).ge(*value),
                }
            }
            WireEvent::EqReal(v, x) => {
                if x.is_nan() {
                    return Err(WireError::bad_request("equality against NaN"));
                }
                var(v).eq(*x)
            }
            WireEvent::EqStr(v, s) => var(v).eq(s.as_str()),
            WireEvent::NeReal(v, x) => {
                if x.is_nan() {
                    return Err(WireError::bad_request("inequality against NaN"));
                }
                var(v).ne(*x)
            }
            WireEvent::NeStr(v, s) => var(v).ne(s.as_str()),
            WireEvent::InInterval {
                var: v,
                lo,
                lo_closed,
                hi,
                hi_closed,
            } => {
                if lo.is_nan() || hi.is_nan() {
                    return Err(WireError::bad_request("interval endpoint is NaN"));
                }
                let iv = Interval::new(*lo, *lo_closed, *hi, *hi_closed)
                    .ok_or_else(|| WireError::bad_request("empty interval (lo above hi)"))?;
                var(v).in_interval(iv)
            }
            WireEvent::OneOf(v, items) => var(v).one_of(items.iter().map(String::as_str)),
            WireEvent::And(es) => Event::and(
                es.iter()
                    .map(WireEvent::to_event)
                    .collect::<Result<_, _>>()?,
            ),
            WireEvent::Or(es) => Event::or(
                es.iter()
                    .map(WireEvent::to_event)
                    .collect::<Result<_, _>>()?,
            ),
            WireEvent::Not(inner) => !inner.to_event()?,
        })
    }

    /// `{"var": v, "cmp": "le", …}` builder (and its three siblings).
    pub fn le(v: &str, x: f64) -> WireEvent {
        WireEvent::Cmp {
            var: v.to_string(),
            cmp: Cmp::Le,
            value: x,
        }
    }

    /// `<` builder.
    pub fn lt(v: &str, x: f64) -> WireEvent {
        WireEvent::Cmp {
            var: v.to_string(),
            cmp: Cmp::Lt,
            value: x,
        }
    }

    /// `>` builder.
    pub fn gt(v: &str, x: f64) -> WireEvent {
        WireEvent::Cmp {
            var: v.to_string(),
            cmp: Cmp::Gt,
            value: x,
        }
    }

    /// `>=` builder.
    pub fn ge(v: &str, x: f64) -> WireEvent {
        WireEvent::Cmp {
            var: v.to_string(),
            cmp: Cmp::Ge,
            value: x,
        }
    }

    /// Real-equality builder.
    pub fn eq_real(v: &str, x: f64) -> WireEvent {
        WireEvent::EqReal(v.to_string(), x)
    }

    /// String-equality builder.
    pub fn eq_str(v: &str, s: &str) -> WireEvent {
        WireEvent::EqStr(v.to_string(), s.to_string())
    }

    /// Renders the wire JSON form.
    pub fn to_json(&self) -> Json {
        let obj = |pairs: Vec<(&str, Json)>| {
            Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        match self {
            WireEvent::Cmp { var: v, cmp, value } => obj(vec![
                ("var", Json::Str(v.clone())),
                ("cmp", Json::Str(cmp.name().to_string())),
                ("value", Json::Num(*value)),
            ]),
            WireEvent::EqReal(v, x) => {
                obj(vec![("var", Json::Str(v.clone())), ("eq", Json::Num(*x))])
            }
            WireEvent::EqStr(v, s) => obj(vec![
                ("var", Json::Str(v.clone())),
                ("eq", Json::Str(s.clone())),
            ]),
            WireEvent::NeReal(v, x) => {
                obj(vec![("var", Json::Str(v.clone())), ("ne", Json::Num(*x))])
            }
            WireEvent::NeStr(v, s) => obj(vec![
                ("var", Json::Str(v.clone())),
                ("ne", Json::Str(s.clone())),
            ]),
            WireEvent::InInterval {
                var: v,
                lo,
                lo_closed,
                hi,
                hi_closed,
            } => {
                let endpoint = |x: f64| {
                    if x.is_finite() {
                        Json::Num(x)
                    } else {
                        Json::Null
                    }
                };
                obj(vec![
                    ("var", Json::Str(v.clone())),
                    (
                        "in",
                        obj(vec![
                            ("lo", endpoint(*lo)),
                            ("lo_closed", Json::Bool(*lo_closed)),
                            ("hi", endpoint(*hi)),
                            ("hi_closed", Json::Bool(*hi_closed)),
                        ]),
                    ),
                ])
            }
            WireEvent::OneOf(v, items) => obj(vec![
                ("var", Json::Str(v.clone())),
                (
                    "one_of",
                    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect()),
                ),
            ]),
            WireEvent::And(es) => obj(vec![(
                "and",
                Json::Arr(es.iter().map(WireEvent::to_json).collect()),
            )]),
            WireEvent::Or(es) => obj(vec![(
                "or",
                Json::Arr(es.iter().map(WireEvent::to_json).collect()),
            )]),
            WireEvent::Not(inner) => obj(vec![("not", inner.to_json())]),
        }
    }

    /// Parses the wire JSON form.
    ///
    /// # Errors
    ///
    /// [`WireError`] (`bad_request`) on unrecognized shapes.
    pub fn from_json(json: &Json) -> Result<WireEvent, WireError> {
        let bad = |m: &str| WireError::bad_request(format!("event: {m}"));
        if let Some(es) = json.get("and") {
            let arr = es.as_arr().ok_or_else(|| bad("`and` takes an array"))?;
            return Ok(WireEvent::And(
                arr.iter()
                    .map(WireEvent::from_json)
                    .collect::<Result<_, _>>()?,
            ));
        }
        if let Some(es) = json.get("or") {
            let arr = es.as_arr().ok_or_else(|| bad("`or` takes an array"))?;
            return Ok(WireEvent::Or(
                arr.iter()
                    .map(WireEvent::from_json)
                    .collect::<Result<_, _>>()?,
            ));
        }
        if let Some(inner) = json.get("not") {
            return Ok(WireEvent::Not(Box::new(WireEvent::from_json(inner)?)));
        }
        let v = json
            .get("var")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing `var` (or `and`/`or`/`not`)"))?
            .to_string();
        if let Some(cmp) = json.get("cmp") {
            let cmp = cmp
                .as_str()
                .and_then(Cmp::parse)
                .ok_or_else(|| bad("`cmp` must be one of lt/le/gt/ge"))?;
            let value = json
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("`cmp` needs a numeric `value`"))?;
            return Ok(WireEvent::Cmp { var: v, cmp, value });
        }
        if let Some(x) = json.get("eq") {
            return match x {
                Json::Num(r) => Ok(WireEvent::EqReal(v, *r)),
                Json::Str(s) => Ok(WireEvent::EqStr(v, s.clone())),
                _ => Err(bad("`eq` takes a number or string")),
            };
        }
        if let Some(x) = json.get("ne") {
            return match x {
                Json::Num(r) => Ok(WireEvent::NeReal(v, *r)),
                Json::Str(s) => Ok(WireEvent::NeStr(v, s.clone())),
                _ => Err(bad("`ne` takes a number or string")),
            };
        }
        if let Some(iv) = json.get("in") {
            let endpoint = |key: &str, inf: f64| -> Result<f64, WireError> {
                match iv.get(key) {
                    None | Some(Json::Null) => Ok(inf),
                    Some(Json::Num(x)) => Ok(*x),
                    Some(_) => Err(bad("interval endpoints are numbers or null")),
                }
            };
            let closed = |key: &str| iv.get(key).and_then(Json::as_bool).unwrap_or(false);
            return Ok(WireEvent::InInterval {
                var: v,
                lo: endpoint("lo", f64::NEG_INFINITY)?,
                lo_closed: closed("lo_closed"),
                hi: endpoint("hi", f64::INFINITY)?,
                hi_closed: closed("hi_closed"),
            });
        }
        if let Some(items) = json.get("one_of") {
            let arr = items
                .as_arr()
                .ok_or_else(|| bad("`one_of` takes an array of strings"))?;
            let items = arr
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| bad("`one_of` takes an array of strings"))?;
            return Ok(WireEvent::OneOf(v, items));
        }
        Err(bad("literal needs `cmp`/`eq`/`ne`/`in`/`one_of`"))
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile-check `source` and report its digest; nothing retained.
    Compile {
        /// SPPL program text.
        source: String,
    },
    /// Compile `source` (if its digest is new) and retain the session —
    /// the register-once half of the query-by-digest protocol.
    Register {
        /// SPPL program text.
        source: String,
    },
    /// Is this digest registered?
    Lookup {
        /// Model digest.
        model: ModelDigest,
    },
    /// `logprob`/`prob` of one event or a batch against a registered
    /// model.
    Query {
        /// Model digest.
        model: ModelDigest,
        /// The event(s) to evaluate.
        events: Vec<WireEvent>,
        /// `true` for the single-event wire shape (`event`), `false` for
        /// the batch shape (`events`). Controls the response shape.
        single: bool,
        /// `true` for `prob` (values in `[0,1]`), `false` for `logprob`.
        prob: bool,
    },
    /// Condition a registered model; the posterior is registered and its
    /// digest returned.
    Condition {
        /// Model digest.
        model: ModelDigest,
        /// Conditioning event.
        event: WireEvent,
    },
    /// Chained conditioning (`S | e₁ | e₂ | …`).
    ConditionChain {
        /// Model digest.
        model: ModelDigest,
        /// Chain of conditioning events, applied in order.
        events: Vec<WireEvent>,
    },
    /// Measure-zero equality observations on base variables.
    Constrain {
        /// Model digest.
        model: ModelDigest,
        /// Variable → observed outcome.
        assignment: BTreeMap<String, WireOutcome>,
    },
    /// Export a registered model's compiled SPE as a wire payload.
    Export {
        /// Model digest.
        model: ModelDigest,
    },
    /// Register a compiled SPE shipped as a wire payload (no source).
    Import {
        /// The [SPE wire format](sppl_core::wire) payload bytes.
        spe: Vec<u8>,
    },
    /// Server counters.
    Stats,
}

/// An observed outcome on the wire (`constrain` assignments).
#[derive(Debug, Clone, PartialEq)]
pub enum WireOutcome {
    /// A real observation.
    Real(f64),
    /// A nominal observation.
    Str(String),
}

impl WireOutcome {
    fn to_json(&self) -> Json {
        match self {
            WireOutcome::Real(x) => Json::Num(*x),
            WireOutcome::Str(s) => Json::Str(s.clone()),
        }
    }
}

/// Converts a wire assignment into the core [`Assignment`].
pub fn to_assignment(wire: &BTreeMap<String, WireOutcome>) -> Assignment {
    wire.iter()
        .map(|(name, outcome)| {
            let outcome = match outcome {
                WireOutcome::Real(x) => Outcome::Real(*x),
                WireOutcome::Str(s) => Outcome::Str(s.clone()),
            };
            (Var::new(name), outcome)
        })
        .collect()
}

/// Parses a 32-hex-digit digest as printed by
/// [`ModelDigest`]'s `Display`.
///
/// # Errors
///
/// [`WireError`] (`bad_request`) unless the input is exactly 32 hex
/// digits.
///
/// ```
/// use sppl_core::digest::ModelDigest;
/// use sppl_serve::protocol::parse_digest;
///
/// let d = ModelDigest::from_u128(0xabc);
/// assert_eq!(parse_digest(&d.to_string()).unwrap(), d);
/// assert!(parse_digest("xyz").is_err());
/// ```
pub fn parse_digest(hex: &str) -> Result<ModelDigest, WireError> {
    if hex.len() != 32 {
        return Err(WireError::bad_request(format!(
            "digest must be 32 hex digits, got {} characters",
            hex.len()
        )));
    }
    u128::from_str_radix(hex, 16)
        .map(ModelDigest::from_u128)
        .map_err(|_| WireError::bad_request("digest must be 32 hex digits"))
}

/// Renders a binary wire payload (an SPE export) as lowercase hex — the
/// only binary-in-JSON encoding the protocol uses.
pub fn payload_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Parses a hex-encoded binary payload.
///
/// # Errors
///
/// [`WireError`] (`bad_request`) on odd length or non-hex characters.
pub fn parse_payload(hex: &str) -> Result<Vec<u8>, WireError> {
    if hex.len() % 2 != 0 {
        return Err(WireError::bad_request(
            "binary payload hex must have even length",
        ));
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&hex[i..i + 2], 16)
                .map_err(|_| WireError::bad_request("binary payload must be hex"))
        })
        .collect()
}

impl Request {
    /// The operation name as it appears in `"op"`.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Compile { .. } => "compile",
            Request::Register { .. } => "register",
            Request::Lookup { .. } => "lookup",
            Request::Query { prob: false, .. } => "logprob",
            Request::Query { prob: true, .. } => "prob",
            Request::Condition { .. } => "condition",
            Request::ConditionChain { .. } => "condition_chain",
            Request::Constrain { .. } => "constrain",
            Request::Export { .. } => "export",
            Request::Import { .. } => "import",
            Request::Stats => "stats",
        }
    }

    /// Renders the request (with an optional correlation id) as a wire
    /// line, newline excluded.
    pub fn encode(&self, id: Option<u64>) -> String {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        if let Some(id) = id {
            pairs.push(("id".to_string(), Json::Num(id as f64)));
        }
        pairs.push(("op".to_string(), Json::Str(self.op().to_string())));
        match self {
            Request::Compile { source } | Request::Register { source } => {
                pairs.push(("source".to_string(), Json::Str(source.clone())));
            }
            Request::Lookup { model } => {
                pairs.push(("model".to_string(), Json::Str(model.to_string())));
            }
            Request::Query {
                model,
                events,
                single,
                ..
            } => {
                pairs.push(("model".to_string(), Json::Str(model.to_string())));
                if *single {
                    pairs.push(("event".to_string(), events[0].to_json()));
                } else {
                    pairs.push((
                        "events".to_string(),
                        Json::Arr(events.iter().map(WireEvent::to_json).collect()),
                    ));
                }
            }
            Request::Condition { model, event } => {
                pairs.push(("model".to_string(), Json::Str(model.to_string())));
                pairs.push(("event".to_string(), event.to_json()));
            }
            Request::ConditionChain { model, events } => {
                pairs.push(("model".to_string(), Json::Str(model.to_string())));
                pairs.push((
                    "events".to_string(),
                    Json::Arr(events.iter().map(WireEvent::to_json).collect()),
                ));
            }
            Request::Constrain { model, assignment } => {
                pairs.push(("model".to_string(), Json::Str(model.to_string())));
                pairs.push((
                    "assignment".to_string(),
                    Json::Obj(
                        assignment
                            .iter()
                            .map(|(k, v)| (k.clone(), v.to_json()))
                            .collect(),
                    ),
                ));
            }
            Request::Export { model } => {
                pairs.push(("model".to_string(), Json::Str(model.to_string())));
            }
            Request::Import { spe } => {
                pairs.push(("spe".to_string(), Json::Str(payload_hex(spe))));
            }
            Request::Stats => {}
        }
        Json::Obj(pairs).render()
    }

    /// Parses one wire line into `(id, Request)`.
    ///
    /// # Errors
    ///
    /// [`WireError`] (`bad_request`) on malformed JSON, an unknown `op`,
    /// or missing/ill-typed fields. When the line carried a readable
    /// `id`, it is returned alongside the error so the response can still
    /// be correlated.
    pub fn decode(line: &str) -> Result<(Option<u64>, Request), (Option<u64>, WireError)> {
        let json = Json::parse(line)
            .map_err(|e| (None, WireError::bad_request(format!("malformed JSON: {e}"))))?;
        let id = json.get("id").and_then(Json::as_f64).map(|x| x as u64);
        let fail = |e: WireError| (id, e);
        let op = json
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| fail(WireError::bad_request("missing `op`")))?;
        let source = || -> Result<String, (Option<u64>, WireError)> {
            json.get("source")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| fail(WireError::bad_request("missing string `source`")))
        };
        let model = || -> Result<ModelDigest, (Option<u64>, WireError)> {
            let hex = json
                .get("model")
                .and_then(Json::as_str)
                .ok_or_else(|| fail(WireError::bad_request("missing string `model`")))?;
            parse_digest(hex).map_err(fail)
        };
        let event_list =
            |single_ok: bool| -> Result<(Vec<WireEvent>, bool), (Option<u64>, WireError)> {
                if single_ok {
                    if let Some(e) = json.get("event") {
                        return Ok((vec![WireEvent::from_json(e).map_err(fail)?], true));
                    }
                }
                let arr = json.get("events").and_then(Json::as_arr).ok_or_else(|| {
                    fail(WireError::bad_request(if single_ok {
                        "missing `event` (or `events` array)"
                    } else {
                        "missing `events` array"
                    }))
                })?;
                let events = arr
                    .iter()
                    .map(WireEvent::from_json)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(fail)?;
                Ok((events, false))
            };
        let request = match op {
            "compile" => Request::Compile { source: source()? },
            "register" => Request::Register { source: source()? },
            "lookup" => Request::Lookup { model: model()? },
            "logprob" | "prob" => {
                let (events, single) = event_list(true)?;
                if events.is_empty() && single {
                    unreachable!("single implies one event");
                }
                Request::Query {
                    model: model()?,
                    events,
                    single,
                    prob: op == "prob",
                }
            }
            "condition" => {
                let e = json
                    .get("event")
                    .ok_or_else(|| fail(WireError::bad_request("missing `event`")))?;
                Request::Condition {
                    model: model()?,
                    event: WireEvent::from_json(e).map_err(fail)?,
                }
            }
            "condition_chain" => {
                let (events, _) = event_list(false)?;
                Request::ConditionChain {
                    model: model()?,
                    events,
                }
            }
            "constrain" => {
                let obj = json
                    .get("assignment")
                    .and_then(Json::as_obj)
                    .ok_or_else(|| fail(WireError::bad_request("missing object `assignment`")))?;
                let mut assignment = BTreeMap::new();
                for (k, v) in obj {
                    let outcome = match v {
                        Json::Num(x) => WireOutcome::Real(*x),
                        Json::Str(s) => WireOutcome::Str(s.clone()),
                        _ => {
                            return Err(fail(WireError::bad_request(
                                "assignment values are numbers or strings",
                            )))
                        }
                    };
                    assignment.insert(k.clone(), outcome);
                }
                Request::Constrain {
                    model: model()?,
                    assignment,
                }
            }
            "export" => Request::Export { model: model()? },
            "import" => {
                let hex = json
                    .get("spe")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail(WireError::bad_request("missing string `spe`")))?;
                Request::Import {
                    spe: parse_payload(hex).map_err(fail)?,
                }
            }
            "stats" => Request::Stats,
            other => {
                return Err(fail(WireError::bad_request(format!(
                    "unknown op `{other}`"
                ))))
            }
        };
        Ok((id, request))
    }
}

/// Aggregated server counters, as returned by the `stats` op.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Requests decoded (including ones that later failed).
    pub requests: u64,
    /// Error responses sent.
    pub errors: u64,
    /// Queries answered from a concurrently in-flight evaluation of the
    /// same `(model digest, event fingerprint)` key.
    pub coalesced: u64,
    /// Batching windows executed.
    pub batches: u64,
    /// Queries evaluated through batching windows.
    pub batched_queries: u64,
    /// Largest single window batch.
    pub max_batch: u64,
    /// Batch-size histogram: count of windows whose batch size fell in
    /// each bucket (`1`, `2`, `3-4`, `5-8`, `9-16`, `17-32`, `33+`).
    pub batch_hist: [u64; 7],
    /// Registered models (roots and posteriors).
    pub models: u64,
    /// Compiles answered from the in-memory compile-cache tier.
    pub compile_cache_hits: u64,
    /// Compiles answered from the on-disk compile-cache tier.
    pub compile_cache_disk_hits: u64,
    /// Compiles that found no compile-cache tier warm.
    pub compile_cache_misses: u64,
    /// Full source → SPE translations performed (zero on a warm cache).
    pub translations: u64,
    /// Batching windows evaluated through the arena evaluator.
    pub arena_batches: u64,
    /// Shared-cache hits.
    pub cache_hits: u64,
    /// Shared-cache misses (each is one underlying evaluation).
    pub cache_misses: u64,
    /// Shared-cache entries.
    pub cache_entries: u64,
    /// Shared-cache evictions.
    pub cache_evictions: u64,
    /// Background snapshot saves completed.
    pub snapshot_saves: u64,
}

/// Bucket labels matching [`StatsSnapshot::batch_hist`].
pub const BATCH_HIST_BUCKETS: [&str; 7] = ["1", "2", "3-4", "5-8", "9-16", "17-32", "33+"];

/// The bucket index a batch of `size` falls into.
pub fn batch_hist_bucket(size: usize) -> usize {
    match size {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        17..=32 => 5,
        _ => 6,
    }
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `compile`/`register` result.
    Compiled {
        /// Content digest of the compiled model.
        digest: ModelDigest,
        /// The model's variable scope, sorted.
        vars: Vec<String>,
        /// `register` only: whether this digest was newly retained
        /// (`None` for plain `compile`, which retains nothing).
        fresh: Option<bool>,
    },
    /// `lookup` result.
    Found {
        /// Whether the digest is registered.
        found: bool,
        /// The registered model's variable scope (when found).
        vars: Vec<String>,
    },
    /// `logprob`/`prob` result: the values in request order. `single`
    /// mirrors the request shape.
    Values {
        /// Result values, exact to the bit.
        values: Vec<f64>,
        /// Single-event response shape (`value`/`bits` scalars).
        single: bool,
    },
    /// `export` result: the model's compiled SPE as a wire payload.
    Exported {
        /// Content digest of the exported model.
        digest: ModelDigest,
        /// The [SPE wire format](sppl_core::wire) payload bytes.
        spe: Vec<u8>,
    },
    /// `condition`/`condition_chain`/`constrain` result.
    Posterior {
        /// Digest of the (registered) posterior model.
        digest: ModelDigest,
        /// Whether the posterior digest was newly registered.
        fresh: bool,
    },
    /// `stats` result.
    Stats(StatsSnapshot),
    /// Any failure.
    Error(WireError),
}

/// Renders an `f64` as 16 hex digits of its bits (the authoritative wire
/// representation of a probability).
fn bits_hex(x: f64) -> Json {
    Json::Str(format!("{:016x}", x.to_bits()))
}

fn parse_bits(json: &Json) -> Result<f64, WireError> {
    let hex = json
        .as_str()
        .ok_or_else(|| WireError::bad_request("`bits` must be a hex string"))?;
    if hex.len() != 16 {
        return Err(WireError::bad_request("`bits` must be 16 hex digits"));
    }
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|_| WireError::bad_request("`bits` must be 16 hex digits"))
}

impl Response {
    /// Renders the response (echoing the request id) as a wire line,
    /// newline excluded.
    pub fn encode(&self, id: Option<u64>) -> String {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        if let Some(id) = id {
            pairs.push(("id".to_string(), Json::Num(id as f64)));
        }
        pairs.push((
            "ok".to_string(),
            Json::Bool(!matches!(self, Response::Error(_))),
        ));
        match self {
            Response::Compiled {
                digest,
                vars,
                fresh,
            } => {
                pairs.push(("digest".to_string(), Json::Str(digest.to_string())));
                pairs.push((
                    "vars".to_string(),
                    Json::Arr(vars.iter().map(|v| Json::Str(v.clone())).collect()),
                ));
                if let Some(fresh) = fresh {
                    pairs.push(("fresh".to_string(), Json::Bool(*fresh)));
                }
            }
            Response::Found { found, vars } => {
                pairs.push(("found".to_string(), Json::Bool(*found)));
                if *found {
                    pairs.push((
                        "vars".to_string(),
                        Json::Arr(vars.iter().map(|v| Json::Str(v.clone())).collect()),
                    ));
                }
            }
            Response::Values { values, single } => {
                if *single {
                    pairs.push(("value".to_string(), Json::Num(values[0])));
                    pairs.push(("bits".to_string(), bits_hex(values[0])));
                } else {
                    pairs.push((
                        "values".to_string(),
                        Json::Arr(values.iter().map(|x| Json::Num(*x)).collect()),
                    ));
                    pairs.push((
                        "bits".to_string(),
                        Json::Arr(values.iter().map(|x| bits_hex(*x)).collect()),
                    ));
                }
            }
            Response::Exported { digest, spe } => {
                pairs.push(("spe".to_string(), Json::Str(payload_hex(spe))));
                pairs.push(("digest".to_string(), Json::Str(digest.to_string())));
            }
            Response::Posterior { digest, fresh } => {
                pairs.push(("posterior".to_string(), Json::Str(digest.to_string())));
                pairs.push(("fresh".to_string(), Json::Bool(*fresh)));
            }
            Response::Stats(s) => {
                let num = |x: u64| Json::Num(x as f64);
                pairs.push(("requests".to_string(), num(s.requests)));
                pairs.push(("errors".to_string(), num(s.errors)));
                pairs.push(("coalesced".to_string(), num(s.coalesced)));
                pairs.push(("batches".to_string(), num(s.batches)));
                pairs.push(("batched_queries".to_string(), num(s.batched_queries)));
                pairs.push(("max_batch".to_string(), num(s.max_batch)));
                pairs.push((
                    "batch_hist".to_string(),
                    Json::Obj(
                        BATCH_HIST_BUCKETS
                            .iter()
                            .zip(s.batch_hist.iter())
                            .map(|(label, count)| (label.to_string(), num(*count)))
                            .collect(),
                    ),
                ));
                pairs.push(("models".to_string(), num(s.models)));
                pairs.push(("compile_cache_hits".to_string(), num(s.compile_cache_hits)));
                pairs.push((
                    "compile_cache_disk_hits".to_string(),
                    num(s.compile_cache_disk_hits),
                ));
                pairs.push((
                    "compile_cache_misses".to_string(),
                    num(s.compile_cache_misses),
                ));
                pairs.push(("translations".to_string(), num(s.translations)));
                pairs.push(("arena_batches".to_string(), num(s.arena_batches)));
                pairs.push(("cache_hits".to_string(), num(s.cache_hits)));
                pairs.push(("cache_misses".to_string(), num(s.cache_misses)));
                pairs.push(("cache_entries".to_string(), num(s.cache_entries)));
                pairs.push(("cache_evictions".to_string(), num(s.cache_evictions)));
                pairs.push(("snapshot_saves".to_string(), num(s.snapshot_saves)));
            }
            Response::Error(e) => {
                pairs.push((
                    "error".to_string(),
                    Json::Obj(vec![
                        ("kind".to_string(), Json::Str(e.kind.clone())),
                        ("message".to_string(), Json::Str(e.message.clone())),
                    ]),
                ));
            }
        }
        Json::Obj(pairs).render()
    }

    /// Parses one wire line into `(id, Response)`. The response shape is
    /// inferred from the fields present.
    ///
    /// # Errors
    ///
    /// [`WireError`] (`bad_request`) when the line is not a recognizable
    /// response.
    pub fn decode(line: &str) -> Result<(Option<u64>, Response), WireError> {
        let json = Json::parse(line)
            .map_err(|e| WireError::bad_request(format!("malformed JSON: {e}")))?;
        let id = json.get("id").and_then(Json::as_f64).map(|x| x as u64);
        let ok = json
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| WireError::bad_request("missing `ok`"))?;
        if !ok {
            let err = json
                .get("error")
                .ok_or_else(|| WireError::bad_request("failure without `error`"))?;
            let kind = err
                .get("kind")
                .and_then(Json::as_str)
                .unwrap_or("internal")
                .to_string();
            let message = err
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            return Ok((id, Response::Error(WireError { kind, message })));
        }
        let vars = |key: &str| -> Vec<String> {
            json.get(key)
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|v| v.as_str().map(str::to_string))
                        .collect()
                })
                .unwrap_or_default()
        };
        // `spe` is checked before `digest`: an export response carries
        // both, and the payload field is what distinguishes it.
        let response = if let Some(spe) = json.get("spe").and_then(Json::as_str) {
            let digest = json
                .get("digest")
                .and_then(Json::as_str)
                .ok_or_else(|| WireError::bad_request("export without `digest`"))?;
            Response::Exported {
                digest: parse_digest(digest)?,
                spe: parse_payload(spe)?,
            }
        } else if let Some(digest) = json.get("digest").and_then(Json::as_str) {
            Response::Compiled {
                digest: parse_digest(digest)?,
                vars: vars("vars"),
                fresh: json.get("fresh").and_then(Json::as_bool),
            }
        } else if let Some(found) = json.get("found").and_then(Json::as_bool) {
            Response::Found {
                found,
                vars: vars("vars"),
            }
        } else if let Some(bits) = json.get("bits") {
            match bits {
                Json::Arr(items) => Response::Values {
                    values: items
                        .iter()
                        .map(parse_bits)
                        .collect::<Result<Vec<_>, _>>()?,
                    single: false,
                },
                _ => Response::Values {
                    values: vec![parse_bits(bits)?],
                    single: true,
                },
            }
        } else if let Some(posterior) = json.get("posterior").and_then(Json::as_str) {
            Response::Posterior {
                digest: parse_digest(posterior)?,
                fresh: json
                    .get("fresh")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| WireError::bad_request("posterior without `fresh`"))?,
            }
        } else if json.get("requests").is_some() {
            let num =
                |key: &str| -> u64 { json.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64 };
            let mut batch_hist = [0u64; 7];
            if let Some(hist) = json.get("batch_hist") {
                for (i, label) in BATCH_HIST_BUCKETS.iter().enumerate() {
                    batch_hist[i] = hist.get(label).and_then(Json::as_f64).unwrap_or(0.0) as u64;
                }
            }
            Response::Stats(StatsSnapshot {
                requests: num("requests"),
                errors: num("errors"),
                coalesced: num("coalesced"),
                batches: num("batches"),
                batched_queries: num("batched_queries"),
                max_batch: num("max_batch"),
                batch_hist,
                models: num("models"),
                compile_cache_hits: num("compile_cache_hits"),
                compile_cache_disk_hits: num("compile_cache_disk_hits"),
                compile_cache_misses: num("compile_cache_misses"),
                translations: num("translations"),
                arena_batches: num("arena_batches"),
                cache_hits: num("cache_hits"),
                cache_misses: num("cache_misses"),
                cache_entries: num("cache_entries"),
                cache_evictions: num("cache_evictions"),
                snapshot_saves: num("snapshot_saves"),
            })
        } else {
            return Err(WireError::bad_request("unrecognized response shape"));
        };
        Ok((id, response))
    }
}

/// The coalescing key: the same `(model digest, canonical event
/// fingerprint)` pair that keys the [`SharedCache`](sppl_core::SharedCache)
/// — two queries coalesce exactly when the cache would give them one
/// entry.
pub type QueryKey = (ModelDigest, Fingerprint);

/// The canonical [`QueryKey`] of `event` against `model`.
pub fn query_key(model: ModelDigest, event: &Event) -> QueryKey {
    (model, event.canonical().fingerprint())
}
