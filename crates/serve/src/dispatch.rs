//! Query dispatch: request coalescing (singleflight) layered under
//! batching windows.
//!
//! Two mechanisms turn concurrent wire traffic into fewer, larger
//! evaluations without changing a single answered bit:
//!
//! 1. **Coalescing.** Every in-flight query owns a *slot* keyed by
//!    [`QueryKey`] — the same `(model digest, canonical event
//!    fingerprint)` pair that keys the
//!    [`SharedCache`](sppl_core::SharedCache). A query arriving while an
//!    identical one is already in flight parks on that slot (condvar)
//!    instead of evaluating, and the one result fans back out to every
//!    waiter. The `coalesced` counter in `stats` counts the parked
//!    queries.
//! 2. **Batching windows.** The first query to arrive while no window is
//!    open becomes the *window leader*: it waits out a short window
//!    (bounded by `max_batch`), takes everything that accumulated,
//!    groups it by model, and evaluates each group as a batch: groups of
//!    [`ARENA_BATCH_MIN`] or more route through the model's cached
//!    [`ArenaModel`](sppl_core::ArenaModel) (the flat vectorized
//!    evaluator, fed the wide inputs single queries never could),
//!    smaller groups through
//!    [`logprob_many`](sppl_core::Model::logprob_many) /
//!    [`par_logprob_many`](sppl_core::Model::par_logprob_many).
//!    Followers simply park on their slots.
//!
//! Bit-identity holds by construction: every batch path is bit-identical
//! to per-event [`logprob`](sppl_core::Model::logprob) (a `logprob_many`
//! batch *is* that loop, the parallel path is the bit-stable evaluator
//! from the parallel-symbolic work, and the arena's contract is
//! bit-identity with the tree walker), `prob` is derived from the
//! coalesced log-probability by exactly the `exp().clamp(0.0, 1.0)` the
//! engine applies, and a batch-level error falls back to per-event
//! evaluation so each waiter sees precisely the `Result` a direct call
//! would produce. The arena route also keeps the [`SharedCache`]
//! authoritative: it probes per event, evaluates only the misses, and
//! publishes results under exactly the keys the engine would use.
//!
//! [`SharedCache`]: sppl_core::SharedCache

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use sppl_core::{default_threads, Event, Model, SpplError};

use crate::protocol::{batch_hist_bucket, query_key, QueryKey};

/// Smallest same-model batch routed through the arena evaluator. Below
/// this, the tree walker's memo reuse wins; at or above it, the flat
/// arena's vectorized passes do (`BENCH_arena.json` records the
/// per-event speedups that justify the route).
pub const ARENA_BATCH_MIN: usize = 4;

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Monotonic serve-layer counters, shared between the dispatcher and the
/// server's `stats` op. All counters are cumulative since startup.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Requests decoded (including ones that later failed).
    pub requests: AtomicU64,
    /// Error responses sent.
    pub errors: AtomicU64,
    /// Queries that parked on another query's in-flight slot.
    pub coalesced: AtomicU64,
    /// Batching windows executed.
    pub batches: AtomicU64,
    /// Queries evaluated through batching windows.
    pub batched_queries: AtomicU64,
    /// Largest batch any single window evaluated.
    pub max_batch: AtomicU64,
    /// Windows per batch-size bucket (see
    /// [`BATCH_HIST_BUCKETS`](crate::protocol::BATCH_HIST_BUCKETS)).
    pub batch_hist: [AtomicU64; 7],
    /// Background snapshot saves completed.
    pub snapshot_saves: AtomicU64,
    /// Batch groups evaluated through the arena evaluator (batches of
    /// at least [`ARENA_BATCH_MIN`] uncached events).
    pub arena_batches: AtomicU64,
}

impl ServeCounters {
    /// Fresh zeroed counters.
    pub fn new() -> ServeCounters {
        ServeCounters::default()
    }

    /// The batch histogram as plain values.
    pub fn hist_values(&self) -> [u64; 7] {
        let mut out = [0u64; 7];
        for (slot, counter) in out.iter_mut().zip(self.batch_hist.iter()) {
            *slot = counter.load(Ordering::Relaxed);
        }
        out
    }
}

/// One in-flight evaluation: waiters park on `ready` until `result` is
/// set by whoever evaluates the key.
struct Slot {
    result: Mutex<Option<Result<f64, SpplError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<f64, SpplError>) {
        let mut guard = lock(&self.result);
        if guard.is_none() {
            *guard = Some(result);
        }
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<f64, SpplError> {
        let mut guard = lock(&self.result);
        loop {
            if let Some(result) = guard.as_ref() {
                return result.clone();
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One enqueued query awaiting a batching window.
struct Pending {
    key: QueryKey,
    model: Arc<Model>,
    event: Event,
    slot: Arc<Slot>,
}

struct Window {
    pending: Vec<Pending>,
    leader_active: bool,
}

/// The dispatcher: coalesces identical in-flight queries and merges
/// distinct ones into batched evaluations.
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use sppl_analyze::compile_model;
/// use sppl_core::{var, SharedCache};
/// use sppl_serve::dispatch::Dispatcher;
///
/// let cache = Arc::new(SharedCache::new(1024));
/// let model = Arc::new(
///     compile_model("X ~ normal(0, 1)").unwrap().with_shared_cache(Arc::clone(&cache)),
/// );
/// let dispatcher = Dispatcher::new(Duration::from_micros(200), 32);
/// let event = var("X").le(0.5);
/// let served = dispatcher.logprob(&model, &event).unwrap();
/// assert_eq!(served.to_bits(), model.logprob(&event).unwrap().to_bits());
/// ```
pub struct Dispatcher {
    slots: Mutex<HashMap<QueryKey, Arc<Slot>>>,
    window: Mutex<Window>,
    arrivals: Condvar,
    window_len: Duration,
    max_batch: usize,
    counters: Arc<ServeCounters>,
}

impl Dispatcher {
    /// A dispatcher whose windows stay open for `window_len` or until
    /// `max_batch` queries accumulate, whichever is first. A zero
    /// `window_len` still batches whatever arrives while an evaluation
    /// is in progress.
    pub fn new(window_len: Duration, max_batch: usize) -> Dispatcher {
        Dispatcher::with_counters(window_len, max_batch, Arc::new(ServeCounters::new()))
    }

    /// Like [`Dispatcher::new`], sharing externally owned counters.
    pub fn with_counters(
        window_len: Duration,
        max_batch: usize,
        counters: Arc<ServeCounters>,
    ) -> Dispatcher {
        Dispatcher {
            slots: Mutex::new(HashMap::new()),
            window: Mutex::new(Window {
                pending: Vec::new(),
                leader_active: false,
            }),
            arrivals: Condvar::new(),
            window_len,
            max_batch: max_batch.max(1),
            counters,
        }
    }

    /// The shared counters.
    pub fn counters(&self) -> &Arc<ServeCounters> {
        &self.counters
    }

    /// The log-probability of `event` under `model`, served through the
    /// coalescing and batching layers. Bit-identical to
    /// [`Model::logprob`].
    ///
    /// # Errors
    ///
    /// Exactly the [`SpplError`] the direct call would produce.
    pub fn logprob(&self, model: &Arc<Model>, event: &Event) -> Result<f64, SpplError> {
        let key = query_key(model.model_digest(), event);
        // Fast path: a finished evaluation is in the shared cache; no
        // reason to hold the query through a window. `probe` records no
        // miss — the evaluation behind the slot does.
        if let Some(cache) = model.shared_cache() {
            if let Some(value) = cache.probe(key.0, key.1) {
                return Ok(value);
            }
        }
        let (slot, owner) = {
            let mut slots = lock(&self.slots);
            match slots.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot::new());
                    slots.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if !owner {
            self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            return slot.wait();
        }
        self.enqueue(Pending {
            key,
            model: Arc::clone(model),
            event: event.clone(),
            slot: Arc::clone(&slot),
        });
        slot.wait()
    }

    /// The probability of `event` under `model`: the coalesced
    /// log-probability pushed through the engine's own
    /// `exp().clamp(0.0, 1.0)`, hence bit-identical to
    /// [`Model::prob`].
    ///
    /// # Errors
    ///
    /// Exactly the [`SpplError`] the direct call would produce.
    pub fn prob(&self, model: &Arc<Model>, event: &Event) -> Result<f64, SpplError> {
        Ok(self.logprob(model, event)?.exp().clamp(0.0, 1.0))
    }

    fn enqueue(&self, pending: Pending) {
        let mut window = lock(&self.window);
        window.pending.push(pending);
        if window.leader_active {
            if window.pending.len() >= self.max_batch {
                self.arrivals.notify_all();
            }
            return;
        }
        window.leader_active = true;
        self.lead_window(window);
    }

    /// Runs one batching window to completion; the calling thread is the
    /// leader and holds the window lock on entry.
    fn lead_window(&self, mut window: MutexGuard<'_, Window>) {
        let deadline = Instant::now() + self.window_len;
        loop {
            if window.pending.len() >= self.max_batch {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            window = self
                .arrivals
                .wait_timeout(window, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        let batch = std::mem::take(&mut window.pending);
        window.leader_active = false;
        drop(window);
        self.execute(batch);
    }

    /// Evaluates one window's batch, grouped by model, and completes
    /// every slot. Every pending query is completed even if an
    /// evaluation panics (the drop guard answers the rest with an
    /// internal error rather than leaving waiters parked forever).
    fn execute(&self, batch: Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .batched_queries
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        self.counters
            .max_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        self.counters.batch_hist[batch_hist_bucket(batch.len())].fetch_add(1, Ordering::Relaxed);

        let guard = FlushGuard {
            dispatcher: self,
            remaining: batch,
        };
        // Group by model digest, preserving arrival order within groups.
        // Indices into `guard.remaining` so the guard keeps ownership.
        let mut groups: Vec<(Vec<usize>, Arc<Model>)> = Vec::new();
        for (i, p) in guard.remaining.iter().enumerate() {
            match groups.iter_mut().find(|(_, m)| m.model_digest() == p.key.0) {
                Some((indices, _)) => indices.push(i),
                None => groups.push((vec![i], Arc::clone(&p.model))),
            }
        }
        for (indices, model) in groups {
            let events: Vec<Event> = indices
                .iter()
                .map(|&i| guard.remaining[i].event.clone())
                .collect();
            let results = self.evaluate_group(&model, &events);
            for (&i, result) in indices.iter().zip(results) {
                guard.finish(i, result);
            }
        }
        guard.flush_rest_ok();
    }

    /// Evaluates one same-model group. Batches of [`ARENA_BATCH_MIN`] or
    /// more route through the model's cached [`ArenaModel`]
    /// (bit-identical to the tree walker by the arena's contract);
    /// smaller groups keep the tree paths. On any batch-level error,
    /// re-evaluate per event so each query gets its own precise
    /// `Result`.
    fn evaluate_group(&self, model: &Arc<Model>, events: &[Event]) -> Vec<Result<f64, SpplError>> {
        if events.len() == 1 {
            return vec![model.logprob(&events[0])];
        }
        if events.len() >= ARENA_BATCH_MIN {
            if let Some(results) = self.arena_group(model, events) {
                return results;
            }
        }
        let batched = if default_threads() > 1 {
            model.par_logprob_many(events)
        } else {
            model.logprob_many(events)
        };
        match batched {
            Ok(values) => values.into_iter().map(Ok).collect(),
            Err(_) => events.iter().map(|e| model.logprob(e)).collect(),
        }
    }

    /// The arena route, preserving the engine's shared-cache discipline:
    /// probe per event, evaluate only the misses through the arena, and
    /// publish results under exactly the keys `Model::logprob` would use
    /// (the shared cache stays authoritative — later single queries and
    /// warm-start snapshots see the same entries either way). Returns
    /// `None` (fall back to the tree paths) when the model has no shared
    /// cache or the arena reports a batch-level error.
    fn arena_group(
        &self,
        model: &Arc<Model>,
        events: &[Event],
    ) -> Option<Vec<Result<f64, SpplError>>> {
        let cache = model.shared_cache()?;
        let digest = model.model_digest();
        let keys: Vec<_> = events.iter().map(|e| query_key(digest, e).1).collect();
        let mut values: Vec<Option<f64>> = keys.iter().map(|&k| cache.get(digest, k)).collect();
        let missing: Vec<usize> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_none())
            .map(|(i, _)| i)
            .collect();
        if !missing.is_empty() {
            let arena = model.compile_arena();
            let miss_events: Vec<Event> = missing.iter().map(|&i| events[i].clone()).collect();
            let computed = arena.logprob_many(&miss_events).ok()?;
            for (&i, value) in missing.iter().zip(computed) {
                values[i] = Some(cache.insert(digest, keys[i], value));
            }
        }
        self.counters.arena_batches.fetch_add(1, Ordering::Relaxed);
        Some(values.into_iter().map(|v| Ok(v.expect("filled"))).collect())
    }

    /// Removes the key's slot (so later arrivals hit the now-warm cache
    /// instead of a dead slot) and wakes every waiter.
    fn finish_pending(&self, pending: &Pending, result: Result<f64, SpplError>) {
        lock(&self.slots).remove(&pending.key);
        pending.slot.complete(result);
    }
}

/// Completes any not-yet-finished pending queries on drop, so a panic in
/// an evaluation path cannot strand parked waiters.
struct FlushGuard<'a> {
    dispatcher: &'a Dispatcher,
    remaining: Vec<Pending>,
}

impl FlushGuard<'_> {
    fn finish(&self, index: usize, result: Result<f64, SpplError>) {
        self.dispatcher
            .finish_pending(&self.remaining[index], result);
    }

    fn flush_rest_ok(mut self) {
        self.remaining.clear();
    }
}

impl Drop for FlushGuard<'_> {
    fn drop(&mut self) {
        for pending in self.remaining.drain(..) {
            self.dispatcher.finish_pending(
                &pending,
                Err(SpplError::Internal {
                    message: "batched evaluation aborted".to_string(),
                }),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sppl_analyze::compile_model;
    use sppl_core::{var, SharedCache};
    use std::sync::Barrier;

    fn model_with_cache(capacity: usize) -> (Arc<Model>, Arc<SharedCache>) {
        let cache = Arc::new(SharedCache::new(capacity));
        let model = compile_model("X ~ normal(0, 1)\nY ~ bernoulli(p=0.5)")
            .unwrap()
            .with_shared_cache(Arc::clone(&cache));
        (Arc::new(model), cache)
    }

    #[test]
    fn single_query_matches_direct_call() {
        let (served, _) = model_with_cache(256);
        let direct = Arc::new(compile_model("X ~ normal(0, 1)\nY ~ bernoulli(p=0.5)").unwrap());
        let dispatcher = Dispatcher::new(Duration::from_micros(100), 8);
        for event in [
            var("X").le(0.25),
            var("X").gt(1.5),
            var("Y").eq(1.0),
            var("X").le(0.25) & var("Y").eq(0.0),
        ] {
            let got = dispatcher.logprob(&served, &event).unwrap();
            let want = direct.logprob(&event).unwrap();
            assert_eq!(got.to_bits(), want.to_bits());
            let got_p = dispatcher.prob(&served, &event).unwrap();
            let want_p = direct.prob(&event).unwrap();
            assert_eq!(got_p.to_bits(), want_p.to_bits());
        }
    }

    #[test]
    fn racing_identical_queries_evaluate_once() {
        let (model, cache) = model_with_cache(256);
        // A long window so every racer lands in one in-flight evaluation.
        let dispatcher = Arc::new(Dispatcher::new(Duration::from_millis(150), 64));
        let n = 8;
        let barrier = Arc::new(Barrier::new(n));
        let event = var("X").le(0.125);
        let results: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let dispatcher = Arc::clone(&dispatcher);
                    let model = Arc::clone(&model);
                    let barrier = Arc::clone(&barrier);
                    let event = event.clone();
                    scope.spawn(move || {
                        barrier.wait();
                        dispatcher.logprob(&model, &event).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let first = results[0];
        assert!(results.iter().all(|r| r.to_bits() == first.to_bits()));
        // Exactly one underlying evaluation: one shared-cache miss, and
        // every other racer either coalesced onto the slot or hit the
        // now-warm cache.
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one evaluation expected");
        let coalesced = dispatcher.counters().coalesced.load(Ordering::Relaxed);
        assert!(coalesced >= 1, "contended load must coalesce");
        // Every racer is a window leader (at least one), coalesced onto
        // the slot, or served by the now-warm cache.
        assert!(
            coalesced + stats.hits < n as u64,
            "leaders are counted in neither tally"
        );
    }

    #[test]
    fn distinct_queries_share_a_window() {
        let (model, _) = model_with_cache(256);
        let dispatcher = Arc::new(Dispatcher::new(Duration::from_millis(150), 64));
        let n = 6;
        let barrier = Arc::new(Barrier::new(n));
        let direct = Arc::new(compile_model("X ~ normal(0, 1)\nY ~ bernoulli(p=0.5)").unwrap());
        std::thread::scope(|scope| {
            for i in 0..n {
                let dispatcher = Arc::clone(&dispatcher);
                let model = Arc::clone(&model);
                let direct = Arc::clone(&direct);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    let event = var("X").le(i as f64 / 4.0);
                    barrier.wait();
                    let got = dispatcher.logprob(&model, &event).unwrap();
                    let want = direct.logprob(&event).unwrap();
                    assert_eq!(got.to_bits(), want.to_bits());
                });
            }
        });
        let counters = dispatcher.counters();
        assert_eq!(counters.batched_queries.load(Ordering::Relaxed), n as u64);
        // All six distinct queries land within the 150 ms window, so far
        // fewer windows than queries run (usually exactly one).
        assert!(counters.batches.load(Ordering::Relaxed) < n as u64);
        assert!(counters.max_batch.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn errors_fan_out_to_every_waiter() {
        let (model, _) = model_with_cache(256);
        let dispatcher = Arc::new(Dispatcher::new(Duration::from_millis(100), 64));
        let n = 4;
        let barrier = Arc::new(Barrier::new(n));
        let event = var("Z").le(0.5); // Z is not in scope.
        std::thread::scope(|scope| {
            for _ in 0..n {
                let dispatcher = Arc::clone(&dispatcher);
                let model = Arc::clone(&model);
                let barrier = Arc::clone(&barrier);
                let event = event.clone();
                scope.spawn(move || {
                    barrier.wait();
                    let got = dispatcher.logprob(&model, &event);
                    let want = model.logprob(&event);
                    assert_eq!(got, want);
                    assert!(got.is_err());
                });
            }
        });
    }

    #[test]
    fn zero_window_still_answers() {
        let (model, _) = model_with_cache(256);
        let dispatcher = Dispatcher::new(Duration::ZERO, 4);
        let event = var("X").gt(0.0);
        let direct = compile_model("X ~ normal(0, 1)\nY ~ bernoulli(p=0.5)").unwrap();
        let got = dispatcher.logprob(&model, &event).unwrap();
        assert_eq!(got.to_bits(), direct.logprob(&event).unwrap().to_bits());
    }
}
