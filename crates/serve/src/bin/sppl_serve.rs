//! `sppl-serve`: the SPPL query server daemon.
//!
//! Binds a TCP listener, prints `listening on <addr>` once ready (so
//! scripts can wait for the port), and serves the line-delimited JSON
//! protocol until killed or `--serve-seconds` elapses. `--test` runs a
//! built-in self-check (register → query → condition → stats over a real
//! loopback connection) and exits.
//!
//! Flags:
//!
//! | flag | default | meaning |
//! |---|---|---|
//! | `--addr HOST:PORT` | `127.0.0.1:0` | bind address (`:0` = ephemeral) |
//! | `--workers N` | CPU threads | connection-handler threads |
//! | `--cache-capacity N` | 65536 | shared-cache entry bound |
//! | `--batch-window-us N` | 500 | batching-window length (µs) |
//! | `--max-batch N` | 64 | max queries per window |
//! | `--cache-snapshot PATH` | off | warm start + rotate snapshots at PATH |
//! | `--snapshot-interval-ms N` | 5000 | background save interval |
//! | `--snapshot-keep K` | 3 | snapshot generations kept by GC |
//! | `--compile-cache DIR` | off | persist compiled SPEs at DIR; warm-register at boot |
//! | `--compile-cache-keep N` | 256 | newest compile-cache payloads kept by GC (0 = all) |
//! | `--expect-warm-compile-cache` | — | with `--test`: assert the self-check ran zero translations |
//! | `--serve-seconds N` | forever | exit (with final snapshot) after N s |
//! | `--test` | — | loopback self-check, then exit |

use std::time::Duration;

use sppl_serve::client::Client;
use sppl_serve::protocol::WireEvent;
use sppl_serve::server::{ServeConfig, Server, SnapshotPolicy};

struct Args {
    config: ServeConfig,
    serve_seconds: Option<u64>,
    test: bool,
    expect_warm: bool,
}

fn parse_args() -> Args {
    let mut config = ServeConfig::default();
    let mut serve_seconds = None;
    let mut test = false;
    let mut expect_warm = false;
    let mut snapshot_base: Option<std::path::PathBuf> = None;
    let mut snapshot_interval = Duration::from_millis(5000);
    let mut snapshot_keep = 3usize;

    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = value(&mut args, "--addr"),
            "--workers" => {
                config.workers = value(&mut args, "--workers")
                    .parse()
                    .expect("--workers takes a thread count")
            }
            "--cache-capacity" => {
                config.cache_capacity = value(&mut args, "--cache-capacity")
                    .parse()
                    .expect("--cache-capacity takes an entry count")
            }
            "--batch-window-us" => {
                config.batch_window = Duration::from_micros(
                    value(&mut args, "--batch-window-us")
                        .parse()
                        .expect("--batch-window-us takes microseconds"),
                )
            }
            "--max-batch" => {
                config.max_batch = value(&mut args, "--max-batch")
                    .parse()
                    .expect("--max-batch takes a query count")
            }
            "--cache-snapshot" => snapshot_base = Some(value(&mut args, "--cache-snapshot").into()),
            "--snapshot-interval-ms" => {
                snapshot_interval = Duration::from_millis(
                    value(&mut args, "--snapshot-interval-ms")
                        .parse()
                        .expect("--snapshot-interval-ms takes milliseconds"),
                )
            }
            "--snapshot-keep" => {
                snapshot_keep = value(&mut args, "--snapshot-keep")
                    .parse()
                    .expect("--snapshot-keep takes a generation count")
            }
            "--serve-seconds" => {
                serve_seconds = Some(
                    value(&mut args, "--serve-seconds")
                        .parse()
                        .expect("--serve-seconds takes seconds"),
                )
            }
            "--compile-cache" => {
                config.compile_cache = Some(value(&mut args, "--compile-cache").into())
            }
            "--compile-cache-keep" => {
                config.compile_cache_keep = value(&mut args, "--compile-cache-keep")
                    .parse()
                    .expect("--compile-cache-keep takes a payload count")
            }
            "--expect-warm-compile-cache" => expect_warm = true,
            "--test" => test = true,
            other => panic!("unknown flag {other} (see the module docs for the flag table)"),
        }
    }
    config.snapshot = snapshot_base.map(|base| SnapshotPolicy {
        base,
        interval: snapshot_interval,
        keep: snapshot_keep,
    });
    Args {
        config,
        serve_seconds,
        test,
        expect_warm,
    }
}

/// Registers a model over a real loopback connection and exercises one
/// of every query shape; panics on any mismatch. With `expect_warm`,
/// additionally asserts the compile cache served everything — the model
/// was boot-registered from disk and zero translations ran (the CI
/// cross-process warm-start check).
fn self_check(server: &Server, expect_warm: bool) {
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let (digest, vars, fresh) = client
        .register("X ~ normal(0, 1)\nY ~ bernoulli(p=0.25)")
        .expect("register");
    if expect_warm {
        assert!(!fresh, "a warm compile cache boot-registers the model");
    } else {
        assert!(fresh, "first registration is fresh");
    }
    assert_eq!(vars, vec!["X".to_string(), "Y".to_string()]);
    assert_eq!(client.lookup(digest).expect("lookup"), Some(vars));

    let p = client.prob(digest, &WireEvent::le("X", 0.0)).expect("prob");
    assert!((p - 0.5).abs() < 1e-12, "P(X<=0) = 1/2, got {p}");
    let batch = client
        .logprob_many(
            digest,
            &[WireEvent::le("X", 1.0), WireEvent::eq_real("Y", 1.0)],
        )
        .expect("batch");
    assert_eq!(batch.len(), 2);
    assert!((batch[1].exp() - 0.25).abs() < 1e-12);

    let (posterior, _) = client
        .condition(digest, &WireEvent::gt("X", 0.0))
        .expect("condition");
    let p = client
        .prob(posterior, &WireEvent::le("X", 0.0))
        .expect("posterior query");
    assert_eq!(p, 0.0, "conditioned mass is gone");

    let stats = client.stats().expect("stats");
    assert!(stats.requests >= 6);
    assert_eq!(stats.models, 2);
    if expect_warm {
        assert_eq!(
            stats.translations, 0,
            "a warm compile cache serves every compile without translating"
        );
        assert!(
            stats.compile_cache_hits + stats.compile_cache_disk_hits >= 1,
            "the warm register must hit a cache tier"
        );
    }
    println!(
        "self-check ok: {} requests, {} models, {} cache entries, {} translations",
        stats.requests, stats.models, stats.cache_entries, stats.translations
    );
}

fn main() {
    let args = parse_args();
    let server = Server::start(args.config).expect("bind listener");
    println!("listening on {}", server.local_addr());

    if args.test {
        self_check(&server, args.expect_warm);
        server.shutdown();
        return;
    }
    match args.serve_seconds {
        Some(seconds) => {
            std::thread::sleep(Duration::from_secs(seconds));
            server.shutdown();
        }
        None => {
            // Serve until killed; park the main thread forever.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
    }
}
