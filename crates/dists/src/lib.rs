//! Primitive probability distributions for SPPL (Lst. 1e / Lst. 9e).
//!
//! The paper's calculus builds multivariate distributions out of three
//! primitive families, each a *restriction* of a base cumulative
//! distribution function (CDF) to a sub-support:
//!
//! * [`DistReal`] — a continuous real distribution restricted to an
//!   interval of positive measure,
//! * [`DistInt`] — an integer-valued distribution restricted to an integer
//!   range,
//! * [`DistStr`] — a nominal (categorical) distribution over strings,
//! * plus [`Distribution::Atomic`], a point mass on a real location (the
//!   `atom(r)` primitive of the surface language and the result of
//!   conditioning a `DistInt` on a single integer).
//!
//! Base CDFs live in the [`Cdf`] enum; restricted distributions are
//! sampled with the truncated integral probability transform of
//! Prop. A.1: draw `u ~ Uniform(F(lo), F(hi))` and return `F⁻¹(u)`.
//!
//! # Example
//!
//! ```
//! use sppl_dists::{Cdf, DistReal};
//! use sppl_sets::Interval;
//! let d = DistReal::new(Cdf::normal(0.0, 1.0), Interval::all()).unwrap();
//! let p = d.measure_interval(&Interval::closed(-1.0, 1.0));
//! assert!((p - 0.6826894921370859).abs() < 1e-9);
//! ```

mod cdf;
mod dist;

pub use cdf::Cdf;
pub use dist::{DistInt, DistReal, DistStr, Distribution};
