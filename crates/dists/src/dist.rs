//! Restricted primitive distributions (`Distribution` domain, Lst. 9e) and
//! their measure semantics (`D`, Lst. 1e).

use rand::Rng;

use sppl_sets::{Interval, Outcome, OutcomeSet, StringSet};

use crate::cdf::Cdf;

/// A continuous real distribution: a base [`Cdf`] restricted to an interval
/// of positive probability (the paper's `DistR(F r₁ r₂)`).
#[derive(Debug, Clone, PartialEq)]
pub struct DistReal {
    cdf: Cdf,
    support: Interval,
    f_lo: f64,
    f_hi: f64,
}

impl DistReal {
    /// Restricts `cdf` to `support`. Returns `None` when the restriction
    /// has zero probability (`F(hi) == F(lo)`).
    pub fn new(cdf: Cdf, support: Interval) -> Option<DistReal> {
        assert!(!cdf.is_discrete(), "DistReal requires a continuous CDF");
        let f_lo = cdf.cdf(support.lo());
        let f_hi = cdf.cdf(support.hi());
        if f_hi <= f_lo {
            return None;
        }
        Some(DistReal {
            cdf,
            support,
            f_lo,
            f_hi,
        })
    }

    /// The base CDF.
    pub fn cdf(&self) -> &Cdf {
        &self.cdf
    }

    /// The restricted support.
    pub fn support(&self) -> Interval {
        self.support
    }

    /// Total probability mass of the restriction under the base CDF.
    pub fn mass(&self) -> f64 {
        self.f_hi - self.f_lo
    }

    /// Probability of an interval under the restricted distribution.
    pub fn measure_interval(&self, iv: &Interval) -> f64 {
        match self.support.intersect(iv) {
            None => 0.0,
            Some(part) => {
                let p = self.cdf.cdf(part.hi()) - self.cdf.cdf(part.lo());
                (p / self.mass()).clamp(0.0, 1.0)
            }
        }
    }

    /// Probability of an outcome set (string parts and isolated points have
    /// measure zero under a continuous distribution).
    pub fn measure(&self, v: &OutcomeSet) -> f64 {
        let mut p = 0.0;
        for iv in v.reals().intervals() {
            if !iv.is_point() {
                p += self.measure_interval(iv);
            }
        }
        p.clamp(0.0, 1.0)
    }

    /// Further truncation to `iv`. `None` if the intersection has zero mass.
    pub fn truncate(&self, iv: &Interval) -> Option<DistReal> {
        let part = self.support.intersect(iv)?;
        DistReal::new(self.cdf.clone(), part)
    }

    /// Normalized density at `x` (zero outside the support).
    pub fn pdf(&self, x: f64) -> f64 {
        if self.support.contains(x) {
            self.cdf.pdf(x) / self.mass()
        } else {
            0.0
        }
    }

    /// Samples via the truncated integral probability transform
    /// (Prop. A.1): `u ~ Uniform(F(lo), F(hi))`, `x = F⁻¹(u)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = self.f_lo + rng.gen::<f64>() * self.mass();
        self.cdf
            .quantile(u.clamp(0.0, 1.0))
            .clamp(self.support.lo(), self.support.hi())
    }
}

/// An integer-valued distribution: a discrete base [`Cdf`] restricted to
/// the integers in `[lo, hi]` (the paper's `DistI(F r₁ r₂)`).
#[derive(Debug, Clone, PartialEq)]
pub struct DistInt {
    cdf: Cdf,
    k_lo: f64,
    k_hi: f64,
    f_below: f64,
    f_hi: f64,
}

impl DistInt {
    /// Restricts `cdf` to the integers in `[lo, hi]` (endpoints may be
    /// ±∞). Returns `None` when the restriction has zero probability.
    pub fn new(cdf: Cdf, lo: f64, hi: f64) -> Option<DistInt> {
        assert!(cdf.is_discrete(), "DistInt requires a discrete CDF");
        let (s_lo, s_hi) = cdf.support();
        let k_lo = lo.ceil().max(s_lo);
        let k_hi = hi.floor().min(s_hi);
        if k_hi < k_lo {
            return None;
        }
        let f_below = if k_lo.is_finite() {
            cdf.cdf(k_lo - 1.0)
        } else {
            0.0
        };
        let f_hi = cdf.cdf(k_hi);
        if f_hi <= f_below {
            return None;
        }
        Some(DistInt {
            cdf,
            k_lo,
            k_hi,
            f_below,
            f_hi,
        })
    }

    /// The base CDF.
    pub fn cdf(&self) -> &Cdf {
        &self.cdf
    }

    /// Smallest supported integer.
    pub fn lo(&self) -> f64 {
        self.k_lo
    }

    /// Largest supported integer (may be +∞).
    pub fn hi(&self) -> f64 {
        self.k_hi
    }

    /// Total probability mass of the restriction under the base CDF.
    pub fn mass(&self) -> f64 {
        self.f_hi - self.f_below
    }

    /// Normalized probability mass at integer `k`.
    pub fn pmf(&self, k: f64) -> f64 {
        if !sppl_num::float::is_integer(k) || k < self.k_lo || k > self.k_hi {
            return 0.0;
        }
        ((self.cdf.cdf(k) - self.cdf.cdf(k - 1.0)) / self.mass()).clamp(0.0, 1.0)
    }

    /// Probability of the integers inside `iv` under the restriction.
    pub fn measure_interval(&self, iv: &Interval) -> f64 {
        // Largest integer excluded from below / included from above.
        let lo_excl = if iv.lo_closed() {
            iv.lo().ceil() - 1.0
        } else {
            iv.lo().floor()
        };
        let hi_incl = if iv.hi_closed() {
            iv.hi().floor()
        } else if sppl_num::float::is_integer(iv.hi()) {
            iv.hi() - 1.0
        } else {
            iv.hi().floor()
        };
        let lo_excl = lo_excl.max(self.k_lo - 1.0);
        let hi_incl = hi_incl.min(self.k_hi);
        if hi_incl < lo_excl + 1.0 {
            return 0.0;
        }
        let f_lo = if lo_excl.is_finite() {
            self.cdf.cdf(lo_excl)
        } else {
            0.0
        };
        ((self.cdf.cdf(hi_incl) - f_lo) / self.mass()).clamp(0.0, 1.0)
    }

    /// Probability of an outcome set (sums interval pieces and integer
    /// points; strings have measure zero).
    pub fn measure(&self, v: &OutcomeSet) -> f64 {
        let mut p = 0.0;
        for iv in v.reals().intervals() {
            if iv.is_point() {
                p += self.pmf(iv.lo());
            } else {
                p += self.measure_interval(iv);
            }
        }
        p.clamp(0.0, 1.0)
    }

    /// Further truncation to `iv`. `None` on zero mass.
    pub fn truncate(&self, iv: &Interval) -> Option<DistInt> {
        // Translate open endpoints into integer-inclusive bounds.
        let lo = if iv.lo_closed() {
            iv.lo().ceil()
        } else {
            iv.lo().floor() + 1.0
        };
        let hi = if iv.hi_closed() {
            iv.hi().floor()
        } else if sppl_num::float::is_integer(iv.hi()) {
            iv.hi() - 1.0
        } else {
            iv.hi().floor()
        };
        DistInt::new(self.cdf.clone(), lo.max(self.k_lo), hi.min(self.k_hi))
    }

    /// The supported integers, if finitely many (used to enumerate atoms).
    pub fn support_points(&self) -> Option<Vec<f64>> {
        if !self.k_hi.is_finite() || !self.k_lo.is_finite() {
            return None;
        }
        let n = (self.k_hi - self.k_lo) as usize;
        Some((0..=n).map(|i| self.k_lo + i as f64).collect())
    }

    /// Samples an integer via the truncated integral probability transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = self.f_below + rng.gen::<f64>() * self.mass();
        self.cdf
            .quantile(u.clamp(0.0, 1.0))
            .clamp(self.k_lo, self.k_hi)
    }
}

/// A categorical distribution over strings (the paper's
/// `DistS((s₁ w₁) … (sₘ wₘ))`), kept normalized with positive weights.
#[derive(Debug, Clone, PartialEq)]
pub struct DistStr {
    items: Vec<(String, f64)>,
}

impl DistStr {
    /// Builds a categorical distribution, dropping zero weights and
    /// normalizing. Returns `None` when the total weight is not positive.
    pub fn new<I, S>(items: I) -> Option<DistStr>
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        let mut out: Vec<(String, f64)> = Vec::new();
        let mut total = 0.0;
        for (s, w) in items {
            assert!(
                w >= 0.0 && w.is_finite(),
                "categorical weights must be >= 0"
            );
            if w > 0.0 {
                total += w;
                out.push((s.into(), w));
            }
        }
        if total <= 0.0 {
            return None;
        }
        for (_, w) in &mut out {
            *w /= total;
        }
        Some(DistStr { items: out })
    }

    /// Rebuilds a categorical from weights that are *already* normalized
    /// (e.g. read back from the serialized wire form), storing them
    /// bit-exactly instead of re-dividing by their total — `new` would
    /// perturb the stored bits whenever the total is `≈ 1.0` but not
    /// exactly `1.0`. Returns `None` when any weight is not in `(0, 1]`
    /// or the total strays from one by more than a sloppy tolerance
    /// (corrupt input, not float drift).
    pub fn from_normalized<I, S>(items: I) -> Option<DistStr>
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        let mut out: Vec<(String, f64)> = Vec::new();
        let mut total = 0.0;
        for (s, w) in items {
            if !(w > 0.0 && w <= 1.0) {
                return None;
            }
            total += w;
            out.push((s.into(), w));
        }
        if out.is_empty() || (total - 1.0).abs() > 1e-6 {
            return None;
        }
        Some(DistStr { items: out })
    }

    /// The supported strings and their normalized weights.
    pub fn items(&self) -> &[(String, f64)] {
        &self.items
    }

    /// Probability mass of a single string.
    pub fn pmf(&self, s: &str) -> f64 {
        self.items
            .iter()
            .find(|(name, _)| name == s)
            .map_or(0.0, |(_, w)| *w)
    }

    /// Probability of the string component of an outcome set.
    pub fn measure_strings(&self, v: &StringSet) -> f64 {
        self.items
            .iter()
            .filter(|(s, _)| v.contains(s))
            .map(|(_, w)| *w)
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Probability of an outcome set (real parts have measure zero).
    pub fn measure(&self, v: &OutcomeSet) -> f64 {
        self.measure_strings(v.strs())
    }

    /// Restriction (conditioning) to a string set; `None` on zero mass.
    pub fn restrict(&self, v: &StringSet) -> Option<DistStr> {
        DistStr::new(
            self.items
                .iter()
                .filter(|(s, _)| v.contains(s))
                .map(|(s, w)| (s.clone(), *w)),
        )
    }

    /// Samples a string.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &str {
        let mut u = rng.gen::<f64>();
        for (s, w) in &self.items {
            if u < *w {
                return s;
            }
            u -= w;
        }
        &self.items.last().expect("nonempty by construction").0
    }
}

/// A primitive univariate distribution at an SPE leaf.
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Continuous real distribution.
    Real(DistReal),
    /// Integer-valued distribution.
    Int(DistInt),
    /// Nominal distribution over strings.
    Str(DistStr),
    /// A point mass at a real location (`atom(r)`).
    Atomic {
        /// The location carrying all the mass.
        loc: f64,
    },
}

impl Distribution {
    /// Probability of an outcome set (the paper's `D⟦d⟧ v`, Lst. 1e).
    pub fn measure(&self, v: &OutcomeSet) -> f64 {
        match self {
            Distribution::Real(d) => d.measure(v),
            Distribution::Int(d) => d.measure(v),
            Distribution::Str(d) => d.measure(v),
            Distribution::Atomic { loc } => {
                if v.contains_real(*loc) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Generalized density at a single outcome, as the pair
    /// `(degree, weight)` of the lexicographic semantics (Lst. 1d): the
    /// degree counts continuous dimensions participating in the weight.
    pub fn density(&self, o: &Outcome) -> (u64, f64) {
        match (self, o) {
            (Distribution::Real(d), Outcome::Real(r)) => (1, d.pdf(*r)),
            (Distribution::Real(_), Outcome::Str(_)) => (1, 0.0),
            _ => {
                let w = self.measure(&match o {
                    Outcome::Real(r) => OutcomeSet::real_point(*r),
                    Outcome::Str(s) => OutcomeSet::strings([s.as_str()]),
                });
                (u64::from(w == 0.0), w)
            }
        }
    }

    /// Samples an outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Outcome {
        match self {
            Distribution::Real(d) => Outcome::Real(d.sample(rng)),
            Distribution::Int(d) => Outcome::Real(d.sample(rng)),
            Distribution::Str(d) => Outcome::Str(d.sample(rng).to_owned()),
            Distribution::Atomic { loc } => Outcome::Real(*loc),
        }
    }

    /// The set of outcomes with positive probability (an over-approximation
    /// for continuous supports: the support interval).
    pub fn support_set(&self) -> OutcomeSet {
        match self {
            Distribution::Real(d) => OutcomeSet::from(d.support()),
            Distribution::Int(d) => match d.support_points() {
                Some(pts) => OutcomeSet::real_points(pts),
                None => OutcomeSet::from(
                    Interval::new(d.lo(), true, d.hi(), d.hi().is_finite())
                        .unwrap_or_else(Interval::all),
                ),
            },
            Distribution::Str(d) => OutcomeSet::strings(d.items().iter().map(|(s, _)| s.clone())),
            Distribution::Atomic { loc } => OutcomeSet::real_point(*loc),
        }
    }

    /// True when the distribution is continuous.
    pub fn is_continuous(&self) -> bool {
        matches!(self, Distribution::Real(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sppl_num::float::approx_eq;
    use sppl_sets::RealSet;

    fn std_normal() -> DistReal {
        DistReal::new(Cdf::normal(0.0, 1.0), Interval::all()).unwrap()
    }

    #[test]
    fn real_measure_and_truncate() {
        let d = std_normal();
        assert!(approx_eq(d.measure_interval(&Interval::all()), 1.0, 1e-12));
        let half = d.truncate(&Interval::above(0.0, true).unwrap()).unwrap();
        assert!(approx_eq(half.mass(), 0.5, 1e-12));
        // Truncated measure doubles.
        let p = half.measure_interval(&Interval::closed(0.0, 1.0));
        let q = d.measure_interval(&Interval::closed(0.0, 1.0));
        assert!(approx_eq(p, 2.0 * q, 1e-10));
    }

    #[test]
    fn real_zero_mass_truncation_fails() {
        let u = DistReal::new(Cdf::uniform(0.0, 1.0), Interval::closed(0.0, 1.0)).unwrap();
        assert!(u.truncate(&Interval::closed(2.0, 3.0)).is_none());
    }

    #[test]
    fn real_points_have_measure_zero() {
        let d = std_normal();
        let v = OutcomeSet::real_points([0.0, 1.0]);
        assert_eq!(d.measure(&v), 0.0);
        assert_eq!(d.measure(&OutcomeSet::strings(["x"])), 0.0);
    }

    #[test]
    fn real_union_measure_adds() {
        let d = std_normal();
        let v = OutcomeSet::from_reals(RealSet::from_intervals(vec![
            Interval::closed(-1.0, 0.0),
            Interval::closed(1.0, 2.0),
        ]));
        let direct = d.measure_interval(&Interval::closed(-1.0, 0.0))
            + d.measure_interval(&Interval::closed(1.0, 2.0));
        assert!(approx_eq(d.measure(&v), direct, 1e-12));
    }

    #[test]
    fn int_pmf_and_measure() {
        let d = DistInt::new(Cdf::poisson(3.0), 0.0, f64::INFINITY).unwrap();
        assert!(approx_eq(d.pmf(2.0), Cdf::poisson(3.0).pmf(2.0), 1e-12));
        assert_eq!(d.pmf(2.5), 0.0);
        // Open vs closed interval endpoints matter for integers.
        let open = d.measure_interval(&Interval::open(0.0, 3.0)); // {1, 2}
        let closed = d.measure_interval(&Interval::closed(0.0, 3.0)); // {0,1,2,3}
        let p = Cdf::poisson(3.0);
        assert!(approx_eq(open, p.pmf(1.0) + p.pmf(2.0), 1e-12));
        assert!(approx_eq(
            closed,
            p.pmf(0.0) + p.pmf(1.0) + p.pmf(2.0) + p.pmf(3.0),
            1e-12
        ));
    }

    #[test]
    fn int_truncation_renormalizes() {
        let d = DistInt::new(Cdf::binomial(10, 0.5), 0.0, 10.0).unwrap();
        let t = d.truncate(&Interval::closed(4.0, 6.0)).unwrap();
        let total: f64 = (4..=6).map(|k| t.pmf(k as f64)).sum();
        assert!(approx_eq(total, 1.0, 1e-12));
        assert_eq!(t.pmf(3.0), 0.0);
    }

    #[test]
    fn int_support_points() {
        let d = DistInt::new(Cdf::binomial(3, 0.5), 0.0, 3.0).unwrap();
        assert_eq!(d.support_points().unwrap(), vec![0.0, 1.0, 2.0, 3.0]);
        let p = DistInt::new(Cdf::poisson(1.0), 0.0, f64::INFINITY).unwrap();
        assert!(p.support_points().is_none());
    }

    #[test]
    fn str_measure_and_restrict() {
        let d = DistStr::new([("a", 0.2), ("b", 0.3), ("c", 0.5)]).unwrap();
        assert!(approx_eq(d.pmf("b"), 0.3, 1e-12));
        assert_eq!(d.pmf("zz"), 0.0);
        let v = StringSet::cofinite(["a"]);
        assert!(approx_eq(d.measure_strings(&v), 0.8, 1e-12));
        let r = d.restrict(&StringSet::finite(["a", "c"])).unwrap();
        assert!(approx_eq(r.pmf("a"), 0.2 / 0.7, 1e-12));
        assert!(d.restrict(&StringSet::finite(["zz"])).is_none());
    }

    #[test]
    fn str_rejects_all_zero() {
        assert!(DistStr::new([("a", 0.0)]).is_none());
    }

    #[test]
    fn atomic_measure() {
        let d = Distribution::Atomic { loc: 4.0 };
        assert_eq!(
            d.measure(&OutcomeSet::from(Interval::closed(0.0, 10.0))),
            1.0
        );
        assert_eq!(d.measure(&OutcomeSet::from(Interval::open(4.0, 10.0))), 0.0);
        assert_eq!(d.measure(&OutcomeSet::real_point(4.0)), 1.0);
    }

    #[test]
    fn density_degrees() {
        let real = Distribution::Real(std_normal());
        let (deg, w) = real.density(&Outcome::Real(0.0));
        assert_eq!(deg, 1);
        assert!(approx_eq(w, 0.3989422804014327, 1e-10));
        let atom = Distribution::Atomic { loc: 2.0 };
        assert_eq!(atom.density(&Outcome::Real(2.0)), (0, 1.0));
        assert_eq!(atom.density(&Outcome::Real(3.0)), (1, 0.0));
    }

    #[test]
    fn sampling_respects_truncation() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = std_normal().truncate(&Interval::closed(1.0, 2.0)).unwrap();
        for _ in 0..500 {
            let x = d.sample(&mut rng);
            assert!((1.0..=2.0).contains(&x), "sample escaped truncation: {x}");
        }
        let di = DistInt::new(Cdf::poisson(5.0), 2.0, 4.0).unwrap();
        for _ in 0..500 {
            let k = di.sample(&mut rng);
            assert!((2.0..=4.0).contains(&k) && k == k.floor());
        }
    }

    #[test]
    fn sampling_frequencies_match_measure() {
        let mut rng = StdRng::seed_from_u64(42);
        let d = std_normal();
        let iv = Interval::closed(-1.0, 0.5);
        let n = 20_000;
        let hits = (0..n).filter(|_| iv.contains(d.sample(&mut rng))).count() as f64;
        let p = d.measure_interval(&iv);
        assert!(
            (hits / n as f64 - p).abs() < 0.02,
            "{} vs {}",
            hits / n as f64,
            p
        );
    }
}
