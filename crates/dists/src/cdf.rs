//! The base CDF family (the paper's `CDF ⊂ Real → [0,1]` domain, Lst. 9e).
//!
//! Every member is càdlàg with limits 0 at −∞ and 1 at +∞. Discrete
//! members are supported on the integers; continuous members have a
//! density. Quantiles implement `F⁻¹(u) = inf{r | u ≤ F(r)}`.

use sppl_num::roots::solve_monotone;
use sppl_num::special::{
    beta_inc, clamp_unit, gamma_p, ln_choose, ln_gamma, std_normal_cdf, std_normal_pdf,
    std_normal_quantile,
};

/// A base cumulative distribution function.
///
/// Construct with the family helpers ([`Cdf::normal`], [`Cdf::poisson`], …)
/// which validate parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Cdf {
    /// Normal (Gaussian) with mean `mu` and standard deviation `sigma > 0`.
    Normal { mu: f64, sigma: f64 },
    /// Continuous uniform on `[a, b]`, `a < b`.
    Uniform { a: f64, b: f64 },
    /// Exponential with rate `rate > 0` (support `[0, ∞)`).
    Exponential { rate: f64 },
    /// Gamma with shape `k > 0` and scale `θ > 0` (support `[0, ∞)`).
    Gamma { shape: f64, scale: f64 },
    /// Beta with parameters `a, b > 0` and an optional scale (support
    /// `[0, scale]`); `scale = 1` is the standard beta.
    Beta { a: f64, b: f64, scale: f64 },
    /// Cauchy with location and scale.
    Cauchy { loc: f64, scale: f64 },
    /// Laplace (double exponential) with location and scale.
    Laplace { loc: f64, scale: f64 },
    /// Logistic with location and scale.
    Logistic { loc: f64, scale: f64 },
    /// Student's t with `df > 0` degrees of freedom.
    StudentT { df: f64 },
    /// Poisson with mean `mu > 0` (integer support `{0, 1, …}`).
    Poisson { mu: f64 },
    /// Binomial with `n` trials and success probability `p`.
    Binomial { n: u64, p: f64 },
    /// Geometric: number of failures before the first success,
    /// support `{0, 1, …}`.
    Geometric { p: f64 },
    /// Discrete uniform on the integers `{lo, …, hi}`.
    DiscreteUniform { lo: i64, hi: i64 },
}

impl Cdf {
    /// Normal CDF. Panics if `sigma <= 0`.
    pub fn normal(mu: f64, sigma: f64) -> Cdf {
        assert!(sigma > 0.0, "normal requires sigma > 0, got {sigma}");
        Cdf::Normal { mu, sigma }
    }

    /// Uniform CDF on `[a, b]`. Panics unless `a < b` and both finite.
    pub fn uniform(a: f64, b: f64) -> Cdf {
        assert!(
            a < b && a.is_finite() && b.is_finite(),
            "uniform requires a < b"
        );
        Cdf::Uniform { a, b }
    }

    /// Exponential CDF. Panics if `rate <= 0`.
    pub fn exponential(rate: f64) -> Cdf {
        assert!(rate > 0.0, "exponential requires rate > 0");
        Cdf::Exponential { rate }
    }

    /// Gamma CDF. Panics unless `shape > 0` and `scale > 0`.
    pub fn gamma(shape: f64, scale: f64) -> Cdf {
        assert!(
            shape > 0.0 && scale > 0.0,
            "gamma requires positive parameters"
        );
        Cdf::Gamma { shape, scale }
    }

    /// Standard Beta CDF. Panics unless `a > 0`, `b > 0`.
    pub fn beta(a: f64, b: f64) -> Cdf {
        Cdf::beta_scaled(a, b, 1.0)
    }

    /// Beta CDF scaled to `[0, scale]`.
    pub fn beta_scaled(a: f64, b: f64, scale: f64) -> Cdf {
        assert!(
            a > 0.0 && b > 0.0 && scale > 0.0,
            "beta requires positive parameters"
        );
        Cdf::Beta { a, b, scale }
    }

    /// Cauchy CDF. Panics if `scale <= 0`.
    pub fn cauchy(loc: f64, scale: f64) -> Cdf {
        assert!(scale > 0.0, "cauchy requires scale > 0");
        Cdf::Cauchy { loc, scale }
    }

    /// Laplace CDF. Panics if `scale <= 0`.
    pub fn laplace(loc: f64, scale: f64) -> Cdf {
        assert!(scale > 0.0, "laplace requires scale > 0");
        Cdf::Laplace { loc, scale }
    }

    /// Logistic CDF. Panics if `scale <= 0`.
    pub fn logistic(loc: f64, scale: f64) -> Cdf {
        assert!(scale > 0.0, "logistic requires scale > 0");
        Cdf::Logistic { loc, scale }
    }

    /// Student's t CDF. Panics if `df <= 0`.
    pub fn student_t(df: f64) -> Cdf {
        assert!(df > 0.0, "student_t requires df > 0");
        Cdf::StudentT { df }
    }

    /// Poisson CDF. Panics if `mu <= 0`.
    pub fn poisson(mu: f64) -> Cdf {
        assert!(mu > 0.0, "poisson requires mu > 0, got {mu}");
        Cdf::Poisson { mu }
    }

    /// Binomial CDF. Panics unless `p ∈ [0, 1]`.
    pub fn binomial(n: u64, p: f64) -> Cdf {
        assert!((0.0..=1.0).contains(&p), "binomial requires p in [0,1]");
        Cdf::Binomial { n, p }
    }

    /// Geometric CDF. Panics unless `p ∈ (0, 1]`.
    pub fn geometric(p: f64) -> Cdf {
        assert!(p > 0.0 && p <= 1.0, "geometric requires p in (0,1]");
        Cdf::Geometric { p }
    }

    /// Discrete uniform CDF on `{lo, …, hi}`. Panics if `lo > hi`.
    pub fn discrete_uniform(lo: i64, hi: i64) -> Cdf {
        assert!(lo <= hi, "discrete_uniform requires lo <= hi");
        Cdf::DiscreteUniform { lo, hi }
    }

    /// True when the distribution is supported on the integers.
    pub fn is_discrete(&self) -> bool {
        matches!(
            self,
            Cdf::Poisson { .. }
                | Cdf::Binomial { .. }
                | Cdf::Geometric { .. }
                | Cdf::DiscreteUniform { .. }
        )
    }

    /// Natural support `(lo, hi)` as (possibly infinite) bounds; for
    /// discrete families the integer endpoints, both inclusive.
    pub fn support(&self) -> (f64, f64) {
        match *self {
            Cdf::Normal { .. }
            | Cdf::Cauchy { .. }
            | Cdf::Laplace { .. }
            | Cdf::Logistic { .. }
            | Cdf::StudentT { .. } => (f64::NEG_INFINITY, f64::INFINITY),
            Cdf::Uniform { a, b } => (a, b),
            Cdf::Exponential { .. } | Cdf::Gamma { .. } => (0.0, f64::INFINITY),
            Cdf::Beta { scale, .. } => (0.0, scale),
            Cdf::Poisson { .. } | Cdf::Geometric { .. } => (0.0, f64::INFINITY),
            Cdf::Binomial { n, .. } => (0.0, n as f64),
            Cdf::DiscreteUniform { lo, hi } => (lo as f64, hi as f64),
        }
    }

    /// The CDF value `F(x) = P[X ≤ x]`. Càdlàg for discrete families.
    pub fn cdf(&self, x: f64) -> f64 {
        if x == f64::INFINITY {
            return 1.0;
        }
        if x == f64::NEG_INFINITY {
            return 0.0;
        }
        let p = match *self {
            Cdf::Normal { mu, sigma } => std_normal_cdf((x - mu) / sigma),
            Cdf::Uniform { a, b } => ((x - a) / (b - a)).clamp(0.0, 1.0),
            Cdf::Exponential { rate } => {
                if x < 0.0 {
                    0.0
                } else {
                    -(-rate * x).exp_m1()
                }
            }
            Cdf::Gamma { shape, scale } => {
                if x <= 0.0 {
                    0.0
                } else {
                    gamma_p(shape, x / scale)
                }
            }
            Cdf::Beta { a, b, scale } => {
                if x <= 0.0 {
                    0.0
                } else if x >= scale {
                    1.0
                } else {
                    beta_inc(a, b, x / scale)
                }
            }
            Cdf::Cauchy { loc, scale } => 0.5 + ((x - loc) / scale).atan() / std::f64::consts::PI,
            Cdf::Laplace { loc, scale } => {
                let z = (x - loc) / scale;
                if z < 0.0 {
                    0.5 * z.exp()
                } else {
                    1.0 - 0.5 * (-z).exp()
                }
            }
            Cdf::Logistic { loc, scale } => 1.0 / (1.0 + (-(x - loc) / scale).exp()),
            Cdf::StudentT { df } => {
                if x == 0.0 {
                    0.5
                } else {
                    let t2 = x * x;
                    let ib = beta_inc(df / 2.0, 0.5, df / (df + t2));
                    if x > 0.0 {
                        1.0 - 0.5 * ib
                    } else {
                        0.5 * ib
                    }
                }
            }
            Cdf::Poisson { mu } => {
                let k = x.floor();
                if k < 0.0 {
                    0.0
                } else {
                    // P[X <= k] = Q(k+1, mu)
                    1.0 - gamma_p(k + 1.0, mu)
                }
            }
            Cdf::Binomial { n, p } => {
                let k = x.floor();
                if k < 0.0 {
                    0.0
                } else if k >= n as f64 || p == 0.0 {
                    1.0
                } else if p == 1.0 {
                    0.0
                } else {
                    // P[X <= k] = I_{1-p}(n-k, k+1)
                    beta_inc(n as f64 - k, k + 1.0, 1.0 - p)
                }
            }
            Cdf::Geometric { p } => {
                let k = x.floor();
                if k < 0.0 {
                    0.0
                } else {
                    1.0 - (1.0 - p).powf(k + 1.0)
                }
            }
            Cdf::DiscreteUniform { lo, hi } => {
                let k = x.floor();
                let n = (hi - lo + 1) as f64;
                ((k - lo as f64 + 1.0) / n).clamp(0.0, 1.0)
            }
        };
        clamp_unit(p)
    }

    /// Quantile `F⁻¹(u) = inf{r | u ≤ F(r)}` for `u ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `u ∉ [0, 1]`.
    pub fn quantile(&self, u: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&u),
            "quantile domain is [0,1], got {u}"
        );
        if self.is_discrete() {
            return self.integer_quantile(u);
        }
        let (lo, hi) = self.support();
        if u == 0.0 {
            return lo;
        }
        if u == 1.0 {
            return hi;
        }
        match *self {
            Cdf::Normal { mu, sigma } => mu + sigma * std_normal_quantile(u),
            Cdf::Uniform { a, b } => a + u * (b - a),
            Cdf::Exponential { rate } => -(-u).ln_1p() / rate,
            Cdf::Cauchy { loc, scale } => loc + scale * (std::f64::consts::PI * (u - 0.5)).tan(),
            Cdf::Laplace { loc, scale } => {
                if u < 0.5 {
                    loc + scale * (2.0 * u).ln()
                } else {
                    loc - scale * (2.0 * (1.0 - u)).ln()
                }
            }
            Cdf::Logistic { loc, scale } => loc + scale * (u / (1.0 - u)).ln(),
            // Gamma, Beta, StudentT: numeric inversion of a monotone CDF.
            _ => solve_monotone(|x| self.cdf(x), u, lo, hi)
                .expect("CDF inversion failed — non-monotone CDF?"),
        }
    }

    /// Smallest integer `k` with `F(k) >= u`.
    fn integer_quantile(&self, u: f64) -> f64 {
        let (lo, hi) = self.support();
        if u == 0.0 {
            return lo;
        }
        // Bracket [a, b] with F(a - 1) < u <= F(b) by geometric expansion.
        let mut a = lo;
        let mut b = if hi.is_finite() { hi } else { lo.max(1.0) };
        while b.is_finite() && self.cdf(b) < u {
            let next = (b + 1.0) * 2.0;
            if !next.is_finite() {
                return f64::INFINITY;
            }
            b = next;
        }
        // Binary search over integers.
        while b - a > 0.5 {
            let mid = ((a + b) / 2.0).floor();
            if self.cdf(mid) >= u {
                b = mid;
            } else {
                a = mid + 1.0;
            }
            if a >= b {
                break;
            }
        }
        a.max(lo)
    }

    /// Probability density (continuous) or unnormalized point derivative.
    /// For discrete families use [`Cdf::pmf`].
    pub fn pdf(&self, x: f64) -> f64 {
        debug_assert!(!self.is_discrete(), "pdf called on a discrete CDF");
        match *self {
            Cdf::Normal { mu, sigma } => std_normal_pdf((x - mu) / sigma) / sigma,
            Cdf::Uniform { a, b } => {
                if (a..=b).contains(&x) {
                    1.0 / (b - a)
                } else {
                    0.0
                }
            }
            Cdf::Exponential { rate } => {
                if x < 0.0 {
                    0.0
                } else {
                    rate * (-rate * x).exp()
                }
            }
            Cdf::Gamma { shape, scale } => {
                if x <= 0.0 {
                    0.0
                } else {
                    let z = x / scale;
                    ((shape - 1.0) * z.ln() - z - ln_gamma(shape)).exp() / scale
                }
            }
            Cdf::Beta { a, b, scale } => {
                let z = x / scale;
                if !(0.0..=1.0).contains(&z) {
                    0.0
                } else {
                    let ln_b = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
                    ((a - 1.0) * z.ln() + (b - 1.0) * (1.0 - z).ln() - ln_b).exp() / scale
                }
            }
            Cdf::Cauchy { loc, scale } => {
                let z = (x - loc) / scale;
                1.0 / (std::f64::consts::PI * scale * (1.0 + z * z))
            }
            Cdf::Laplace { loc, scale } => (-(x - loc).abs() / scale).exp() / (2.0 * scale),
            Cdf::Logistic { loc, scale } => {
                let e = (-(x - loc) / scale).exp();
                e / (scale * (1.0 + e) * (1.0 + e))
            }
            Cdf::StudentT { df } => {
                let ln_c = ln_gamma((df + 1.0) / 2.0)
                    - ln_gamma(df / 2.0)
                    - 0.5 * (df * std::f64::consts::PI).ln();
                (ln_c - (df + 1.0) / 2.0 * (1.0 + x * x / df).ln()).exp()
            }
            _ => unreachable!("discrete families handled by pmf"),
        }
    }

    /// Probability mass at integer `k` for discrete families.
    pub fn pmf(&self, k: f64) -> f64 {
        debug_assert!(self.is_discrete(), "pmf called on a continuous CDF");
        if !sppl_num::float::is_integer(k) {
            return 0.0;
        }
        match *self {
            Cdf::Poisson { mu } => {
                if k < 0.0 {
                    0.0
                } else {
                    (k * mu.ln() - mu - ln_gamma(k + 1.0)).exp()
                }
            }
            Cdf::Binomial { n, p } => {
                if k < 0.0 || k > n as f64 {
                    0.0
                } else if p == 0.0 {
                    if k == 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                } else if p == 1.0 {
                    if k == n as f64 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    (ln_choose(n, k as u64) + k * p.ln() + (n as f64 - k) * (1.0 - p).ln()).exp()
                }
            }
            Cdf::Geometric { p } => {
                if k < 0.0 {
                    0.0
                } else {
                    p * (1.0 - p).powf(k)
                }
            }
            Cdf::DiscreteUniform { lo, hi } => {
                if k < lo as f64 || k > hi as f64 {
                    0.0
                } else {
                    1.0 / (hi - lo + 1) as f64
                }
            }
            _ => unreachable!("continuous families handled by pdf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sppl_num::float::approx_eq;

    #[test]
    fn normal_cdf_values() {
        let n = Cdf::normal(1.0, 2.0);
        assert!(approx_eq(n.cdf(1.0), 0.5, 1e-12));
        assert!(approx_eq(n.cdf(3.0), 0.8413447460685429, 1e-10));
        assert_eq!(n.cdf(f64::NEG_INFINITY), 0.0);
        assert_eq!(n.cdf(f64::INFINITY), 1.0);
    }

    #[test]
    fn uniform_cdf_quantile() {
        let u = Cdf::uniform(2.0, 6.0);
        assert_eq!(u.cdf(4.0), 0.5);
        assert_eq!(u.quantile(0.25), 3.0);
        assert_eq!(u.cdf(1.0), 0.0);
        assert_eq!(u.cdf(7.0), 1.0);
    }

    #[test]
    fn exponential_roundtrip() {
        let e = Cdf::exponential(2.0);
        for &u in &[0.1, 0.5, 0.9] {
            assert!(approx_eq(e.cdf(e.quantile(u)), u, 1e-12));
        }
    }

    #[test]
    fn gamma_cdf_is_exponential_at_shape_one() {
        let g = Cdf::gamma(1.0, 0.5); // == exponential(2)
        let e = Cdf::exponential(2.0);
        for &x in &[0.1, 1.0, 3.0] {
            assert!(approx_eq(g.cdf(x), e.cdf(x), 1e-12));
        }
    }

    #[test]
    fn gamma_quantile_numeric() {
        let g = Cdf::gamma(3.0, 1.0);
        for &u in &[0.05, 0.5, 0.95] {
            let x = g.quantile(u);
            assert!(approx_eq(g.cdf(x), u, 1e-9), "u={u} x={x}");
        }
    }

    #[test]
    fn beta_cdf_uniform_case() {
        let b = Cdf::beta(1.0, 1.0);
        assert!(approx_eq(b.cdf(0.3), 0.3, 1e-12));
        let scaled = Cdf::beta_scaled(1.0, 1.0, 7.0);
        assert!(approx_eq(scaled.cdf(3.5), 0.5, 1e-12));
    }

    #[test]
    fn student_t_symmetry() {
        let t = Cdf::student_t(5.0);
        assert!(approx_eq(t.cdf(0.0), 0.5, 1e-12));
        for &x in &[0.5, 1.3, 2.7] {
            assert!(approx_eq(t.cdf(x) + t.cdf(-x), 1.0, 1e-10));
        }
    }

    #[test]
    fn student_t_matches_cauchy_at_df_one() {
        let t = Cdf::student_t(1.0);
        let c = Cdf::cauchy(0.0, 1.0);
        for &x in &[-2.0, -0.5, 0.7, 3.0] {
            assert!(approx_eq(t.cdf(x), c.cdf(x), 1e-9), "x={x}");
        }
    }

    #[test]
    fn poisson_cdf_matches_pmf_sum() {
        let p = Cdf::poisson(3.5);
        let mut acc = 0.0;
        for k in 0..15 {
            acc += p.pmf(k as f64);
            assert!(
                approx_eq(p.cdf(k as f64), acc, 1e-10),
                "k={k}: {} vs {}",
                p.cdf(k as f64),
                acc
            );
        }
        // Càdlàg between integers.
        assert_eq!(p.cdf(2.5), p.cdf(2.0));
        assert_eq!(p.cdf(-0.5), 0.0);
    }

    #[test]
    fn binomial_cdf_matches_pmf_sum() {
        let b = Cdf::binomial(10, 0.3);
        let mut acc = 0.0;
        for k in 0..=10 {
            acc += b.pmf(k as f64);
            assert!(approx_eq(b.cdf(k as f64), acc, 1e-10), "k={k}");
        }
        assert!(approx_eq(acc, 1.0, 1e-12));
    }

    #[test]
    fn binomial_degenerate_p() {
        let b0 = Cdf::binomial(5, 0.0);
        assert_eq!(b0.pmf(0.0), 1.0);
        assert_eq!(b0.cdf(0.0), 1.0);
        let b1 = Cdf::binomial(5, 1.0);
        assert_eq!(b1.pmf(5.0), 1.0);
        assert_eq!(b1.cdf(4.0), 0.0);
    }

    #[test]
    fn geometric_cdf() {
        let g = Cdf::geometric(0.25);
        assert!(approx_eq(g.cdf(0.0), 0.25, 1e-12));
        assert!(approx_eq(g.pmf(2.0), 0.25 * 0.75 * 0.75, 1e-12));
    }

    #[test]
    fn discrete_uniform_cdf() {
        let d = Cdf::discrete_uniform(1, 4);
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(2.0), 0.5);
        assert_eq!(d.cdf(4.0), 1.0);
        assert_eq!(d.pmf(3.0), 0.25);
        assert_eq!(d.pmf(3.5), 0.0);
    }

    #[test]
    fn integer_quantile_is_inf_of_upper_set() {
        let p = Cdf::poisson(4.0);
        for &u in &[0.01, 0.3, 0.77, 0.999] {
            let k = p.quantile(u);
            assert!(p.cdf(k) >= u);
            assert!(k == 0.0 || p.cdf(k - 1.0) < u);
        }
        let b = Cdf::binomial(20, 0.5);
        assert_eq!(b.quantile(1.0), 20.0);
        assert_eq!(b.quantile(0.0), 0.0);
    }

    #[test]
    fn pmf_zero_on_non_integers() {
        assert_eq!(Cdf::poisson(2.0).pmf(1.5), 0.0);
    }

    #[test]
    fn continuous_quantile_roundtrips() {
        for cdf in [
            Cdf::normal(-2.0, 0.7),
            Cdf::laplace(1.0, 2.0),
            Cdf::logistic(0.0, 1.5),
            Cdf::cauchy(3.0, 0.5),
            Cdf::beta(2.0, 5.0),
            Cdf::student_t(7.0),
        ] {
            for &u in &[0.05, 0.35, 0.5, 0.82, 0.99] {
                let x = cdf.quantile(u);
                assert!(
                    approx_eq(cdf.cdf(x), u, 1e-8),
                    "{cdf:?} u={u} x={x} cdf={}",
                    cdf.cdf(x)
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn invalid_sigma_panics() {
        Cdf::normal(0.0, 0.0);
    }
}
