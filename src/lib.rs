//! # SPPL — the Sum-Product Probabilistic Language
//!
//! A Rust implementation of *"SPPL: Probabilistic Programming with Fast
//! Exact Symbolic Inference"* (Saad, Rinard, Mansinghka — PLDI 2021).
//!
//! SPPL translates generative probabilistic programs into **sum-product
//! expressions**, a symbolic representation closed under conditioning, and
//! answers inference queries *exactly*:
//!
//! * [`prob`](sppl_core::Spe::prob) — the probability of any event over
//!   (possibly transformed) program variables,
//! * [`condition`](sppl_core::condition) — the full posterior distribution
//!   given an event (Thm. 4.1 of the paper),
//! * [`constrain`](sppl_core::constrain) — conditioning on measure-zero
//!   equality observations,
//! * [`sample`](sppl_core::Spe::sample) — joint ancestral sampling,
//! * [`QueryEngine`](sppl_core::engine::QueryEngine) — memoized, batched
//!   `logprob`/`condition` over one compiled model, with cache
//!   statistics; wide batches fan out over a thread pool
//!   ([`par_logprob_many`](sppl_core::engine::QueryEngine::par_logprob_many),
//!   the core is `Send + Sync`), and engines over the same model can
//!   share one bounded LRU result cache
//!   ([`SharedCache`](sppl_core::SharedCache)).
//!
//! # Quickstart
//!
//! ```
//! use sppl::prelude::*;
//!
//! // The Indian GPA problem (paper Fig. 2).
//! let factory = Factory::new();
//! let model = compile(&factory, r#"
//!     Nationality ~ choice({'India': 0.5, 'USA': 0.5})
//!     if (Nationality == 'India') {
//!         Perfect ~ bernoulli(p=0.10)
//!         if (Perfect == 1) { GPA ~ atomic(10) } else { GPA ~ uniform(0, 10) }
//!     } else {
//!         Perfect ~ bernoulli(p=0.15)
//!         if (Perfect == 1) { GPA ~ atomic(4) } else { GPA ~ uniform(0, 4) }
//!     }
//! "#).unwrap();
//!
//! // Exact prior query with an atom in the CDF:
//! // P[GPA ≤ 4] = 0.5·(0.9·0.4) + 0.5·(0.15 + 0.85) = 0.68.
//! let gpa = Transform::id(Var::new("GPA"));
//! assert!((model.prob(&Event::le(gpa.clone(), 4.0)).unwrap() - 0.68).abs() < 1e-9);
//!
//! // Exact posterior (paper Fig. 2f/2g).
//! let e = Event::or(vec![
//!     Event::and(vec![
//!         Event::eq_str(Transform::id(Var::new("Nationality")), "USA"),
//!         Event::gt(gpa.clone(), 3.0),
//!     ]),
//!     Event::in_interval(gpa, Interval::open(8.0, 10.0)),
//! ]);
//! let posterior = condition(&factory, &model, &e).unwrap();
//! let p_india = posterior
//!     .prob(&Event::eq_str(Transform::id(Var::new("Nationality")), "India"))
//!     .unwrap();
//! assert!((p_india - 0.3318).abs() < 1e-3);
//! ```
//!
//! # Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`sppl_core`] | sum-product expressions, events, transforms, exact inference |
//! | [`sppl_lang`] | SPPL parser + translator (`→SPE`) + reverse translation |
//! | [`sppl_dists`] | primitive distributions and CDFs |
//! | [`sppl_sets`] | the outcome set algebra |
//! | [`sppl_num`] | special functions, polynomials, root isolation |
//! | [`sppl_models`] | every benchmark model from the paper's evaluation |
//! | [`sppl_baseline`] | PSI/BLOG/VeriFair/FairSquare behavioural substitutes |

pub use sppl_baseline as baseline;
pub use sppl_core as core;
pub use sppl_dists as dists;
pub use sppl_lang as lang;
pub use sppl_models as models;
pub use sppl_num as num;
pub use sppl_sets as sets;

/// One-stop import for applications and examples.
pub mod prelude {
    pub use sppl_core::density::Assignment;
    pub use sppl_core::prelude::*;
    pub use sppl_core::stats::{graph_stats, physical_node_count, tree_node_count};
    pub use sppl_lang::{compile, parse, translate, untranslate};
}
