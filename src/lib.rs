//! # SPPL — the Sum-Product Probabilistic Language
//!
//! A Rust implementation of *"SPPL: Probabilistic Programming with Fast
//! Exact Symbolic Inference"* (Saad, Rinard, Mansinghka — PLDI 2021).
//!
//! SPPL translates generative probabilistic programs into **sum-product
//! expressions**, a symbolic representation closed under conditioning
//! (Thm. 4.1), and answers inference queries *exactly*. The public face
//! of that closure result is [`Model`]: a cheaply-cloneable,
//! `Send + Sync` session handle whose `condition`/`constrain` return
//! **posteriors that are themselves models** — same factory, same warm
//! node-level memos, same cross-session cache.
//!
//! * [`Model::compile`](sppl_analyze::CompileModel::compile) — SPPL source →
//!   statically analyzed, queryable session (see [`analyze`]),
//! * [`Model::prob`](sppl_core::Model::prob) /
//!   [`logprob`](sppl_core::Model::logprob) — exact probability of any
//!   event over (possibly transformed) program variables, memoized;
//!   `*_many` batches share sub-expression evaluations and
//!   [`par_*_many`](sppl_core::Model::par_logprob_many) fan wide batches
//!   over a thread pool with bit-identical results,
//! * [`Model::condition`](sppl_core::Model::condition) /
//!   [`constrain`](sppl_core::Model::constrain) — the full posterior
//!   given an event (or measure-zero equality observations), as a new
//!   [`Model`] sharing the parent's caches,
//! * [`Model::sample`](sppl_core::Model::sample) — joint ancestral
//!   sampling,
//! * [`var()`] and the `&`/`|`/`!` operators — a fluent event DSL:
//!   `var("GPA").le(4.0) & var("Nationality").eq("India")`,
//! * [`SharedCache`](sppl_core::SharedCache) — a bounded cross-session
//!   LRU serving repeated queries across separately compiled sessions.
//!
//! # Quickstart
//!
//! ```
//! use sppl::prelude::*;
//!
//! // The Indian GPA problem (paper Fig. 2): compile straight to a session.
//! let model = Model::compile(r#"
//!     Nationality ~ choice({'India': 0.5, 'USA': 0.5})
//!     if (Nationality == 'India') {
//!         Perfect ~ bernoulli(p=0.10)
//!         if (Perfect == 1) { GPA ~ atomic(10) } else { GPA ~ uniform(0, 10) }
//!     } else {
//!         Perfect ~ bernoulli(p=0.15)
//!         if (Perfect == 1) { GPA ~ atomic(4) } else { GPA ~ uniform(0, 4) }
//!     }
//! "#).unwrap();
//!
//! // Exact prior query with an atom in the CDF:
//! // P[GPA ≤ 4] = 0.5·(0.9·0.4) + 0.5·(0.15 + 0.85) = 0.68.
//! assert!((model.prob(&var("GPA").le(4.0)).unwrap() - 0.68).abs() < 1e-9);
//!
//! // Exact posterior (paper Fig. 2f/2g) — conditioning returns a Model,
//! // so the posterior is immediately queryable (and itself conditionable).
//! let evidence = (var("Nationality").eq("USA") & var("GPA").gt(3.0))
//!     | var("GPA").in_interval(Interval::open(8.0, 10.0));
//! let posterior = model.condition(&evidence).unwrap();
//! let p_india = posterior.prob(&var("Nationality").eq("India")).unwrap();
//! assert!((p_india - 0.3318).abs() < 1e-3);
//!
//! // The posterior shares the parent session's factory and caches.
//! assert!(std::sync::Arc::ptr_eq(model.factory_arc(), posterior.factory_arc()));
//! ```
//!
//! # Migrating from `Factory`/`condition`
//!
//! Earlier revisions exposed the workflow as free functions over
//! `(Factory, Spe)` pairs; those remain available as thin shims —
//! [`compile`](sppl_lang::compile), [`condition`](sppl_core::condition()),
//! [`constrain`](sppl_core::constrain) — for code that manages its own
//! factories. The mapping:
//!
//! | legacy | session-first |
//! |---|---|
//! | `let f = Factory::new(); let spe = compile(&f, src)?` | `let m = Model::compile(src)?` |
//! | `spe.prob(&e)` / `QueryEngine::new(f, spe).prob(&e)` | `m.prob(&e)` |
//! | `condition(&f, &spe, &e)` → bare `Spe` | `m.condition(&e)` → queryable `Model` |
//! | `constrain(&f, &spe, &obs)` → bare `Spe` | `m.constrain(&obs)` → queryable `Model` |
//! | `Event::and(vec![Event::le(Transform::id(Var::new("X")), 1.0), …])` | `var("X").le(1.0) & …` |
//! | rebuild engine per posterior, re-attach `SharedCache` | automatic: posteriors inherit both |
//!
//! Hand-built expressions still work: construct nodes with a
//! [`Factory`](sppl_core::Factory) and wrap them with
//! [`Model::new`](sppl_core::Model::new) (the factory may be shared, as
//! an `Arc`). The engine layer ([`QueryEngine`](sppl_core::QueryEngine))
//! stays public for code that wants explicit pool plumbing.
//!
//! # Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`sppl_core`] | sum-product expressions, events, transforms, exact inference, [`Model`] |
//! | [`sppl_lang`] | SPPL parser + translator (`→SPE`) + reverse translation |
//! | [`sppl_analyze`] | static analysis: domain inference, lints, dead-branch pruning, `sppl-lint` |
//! | [`sppl_dists`] | primitive distributions and CDFs |
//! | [`sppl_sets`] | the outcome set algebra |
//! | [`sppl_num`] | special functions, polynomials, root isolation |
//! | [`sppl_models`] | every benchmark model from the paper's evaluation |
//! | [`sppl_baseline`] | PSI/BLOG/VeriFair/FairSquare behavioural substitutes |
//! | [`sppl_serve`] | line-delimited-JSON TCP query server + client (coalescing, batching, snapshots) |

pub use sppl_analyze as analyze;
pub use sppl_baseline as baseline;
pub use sppl_core as core;
pub use sppl_dists as dists;
pub use sppl_lang as lang;
pub use sppl_models as models;
pub use sppl_num as num;
pub use sppl_serve as serve;
pub use sppl_sets as sets;

pub use sppl_analyze::{check, compile_model, CompileModel};
pub use sppl_core::{var, Event, Model};

/// One-stop import for applications and examples.
pub mod prelude {
    pub use sppl_analyze::{check, compile_model, CompileModel};
    pub use sppl_core::density::Assignment;
    pub use sppl_core::prelude::*;
    pub use sppl_core::stats::{graph_stats, physical_node_count, tree_node_count};
    pub use sppl_lang::{compile, parse, translate, untranslate};
    pub use sppl_serve::{Client as ServeClient, ServeConfig, Server};
}
