//! Rare-event probabilities (paper Sec. 6.3, Fig. 8): SPPL computes exact
//! probabilities of exponentially unlikely observation runs in
//! milliseconds, while rejection sampling needs ever larger sample sizes
//! as the event gets rarer.
//!
//! Run with: `cargo run --release --example rare_events`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl::baseline::sampler::RejectionEstimator;
use sppl::models::rare_event;

fn main() {
    let model = rare_event::chain_network(20)
        .session()
        .expect("chain compiles");
    let mut rng = StdRng::seed_from_u64(99);

    for k in rare_event::figure8_prefixes() {
        let event = rare_event::all_ones_event(k);
        let start = std::time::Instant::now();
        let lp = model.logprob(&event).expect("exact log probability");
        let sppl_s = start.elapsed().as_secs_f64();
        println!("event: first {k} emissions all 1");
        println!(
            "  SPPL exact: log p = {lp:.2}  (p = {:.3e}) in {sppl_s:.4}s",
            lp.exp()
        );

        let estimator = RejectionEstimator {
            max_samples: 100_000,
            checkpoint_every: 25_000,
        };
        let trajectory = estimator.estimate(model.root(), &event, &mut rng);
        for point in trajectory {
            let log_est = if point.estimate > 0.0 {
                format!("{:.2}", point.estimate.ln())
            } else {
                "-inf (no hits yet)".to_string()
            };
            println!(
                "  sampler: n={:>7}  hits={:>3}  log estimate = {log_est}  ({:.2}s)",
                point.samples, point.hits, point.seconds
            );
        }
        println!();
    }
    println!(
        "The sampler's estimate jumps each time a rare hit lands and is pure\n\
         noise until then; SPPL's answer is exact, immediate, and has zero\n\
         variance (the Fig. 8 phenomenon)."
    );
}
