//! Quickstart: the Indian GPA problem (paper Sec. 2.1, Fig. 2).
//!
//! Demonstrates the full modular workflow of Fig. 1: model → translate →
//! query the prior → condition → query the posterior → sample.
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl::prelude::*;

fn main() {
    let factory = Factory::new();

    // ---- modeling (Fig. 2a) ----
    let model = compile(
        &factory,
        r#"
Nationality ~ choice({'India': 0.5, 'USA': 0.5})
if (Nationality == 'India') {
    Perfect ~ bernoulli(p=0.10)
    if (Perfect == 1) { GPA ~ atomic(10) } else { GPA ~ uniform(0, 10) }
} else {
    Perfect ~ bernoulli(p=0.15)
    if (Perfect == 1) { GPA ~ atomic(4) } else { GPA ~ uniform(0, 4) }
}
"#,
    )
    .expect("the model is well-formed");

    let nationality = Transform::id(Var::new("Nationality"));
    let perfect = Transform::id(Var::new("Perfect"));
    let gpa = Transform::id(Var::new("GPA"));

    // ---- prior queries (Fig. 2b) ----
    println!("== prior marginals ==");
    println!(
        "P[Nationality = USA]  = {:.4}",
        model
            .prob(&Event::eq_str(nationality.clone(), "USA"))
            .unwrap()
    );
    println!(
        "P[Perfect = 1]        = {:.4}",
        model.prob(&Event::eq_real(perfect.clone(), 1.0)).unwrap()
    );
    println!("GPA CDF (note the atoms at 4 and 10):");
    for x in [2.0, 3.9999, 4.0, 8.0, 9.9999, 10.0] {
        println!(
            "  P[GPA <= {x:>7.4}] = {:.4}",
            model.prob(&Event::le(gpa.clone(), x)).unwrap()
        );
    }

    // ---- a joint query (Fig. 2c) ----
    let joint = Event::or(vec![
        Event::eq_real(perfect.clone(), 1.0),
        Event::and(vec![
            Event::eq_str(nationality.clone(), "India"),
            Event::gt(gpa.clone(), 3.0),
        ]),
    ]);
    println!(
        "\nP[(Perfect = 1) or (India and GPA > 3)] = {:.4}",
        model.prob(&joint).unwrap()
    );

    // ---- conditioning (Fig. 2f) ----
    let evidence = Event::or(vec![
        Event::and(vec![
            Event::eq_str(nationality.clone(), "USA"),
            Event::gt(gpa.clone(), 3.0),
        ]),
        Event::in_interval(gpa.clone(), Interval::open(8.0, 10.0)),
    ]);
    let posterior = condition(&factory, &model, &evidence).expect("positive probability");

    // ---- posterior queries (Fig. 2h) ----
    println!("\n== posterior marginals given ((USA and GPA > 3) or (8 < GPA < 10)) ==");
    println!(
        "P[Nationality = India | e] = {:.4}   (paper: 0.33)",
        posterior
            .prob(&Event::eq_str(nationality, "India"))
            .unwrap()
    );
    println!(
        "P[Perfect = 1 | e]         = {:.4}   (paper: 0.28)",
        posterior.prob(&Event::eq_real(perfect, 1.0)).unwrap()
    );

    // ---- simulation ----
    let mut rng = StdRng::seed_from_u64(1);
    println!("\n== five posterior samples ==");
    for _ in 0..5 {
        let s = posterior.sample(&mut rng);
        println!(
            "  Nationality={:<6} Perfect={} GPA={:.3}",
            s.str(&Var::new("Nationality")).unwrap(),
            s.real(&Var::new("Perfect")).unwrap(),
            s.real(&Var::new("GPA")).unwrap()
        );
    }
}
