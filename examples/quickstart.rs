//! Quickstart: the Indian GPA problem (paper Sec. 2.1, Fig. 2).
//!
//! Demonstrates the full modular workflow of Fig. 1 on the session-first
//! API: compile a [`Model`] → query the prior → condition (the posterior
//! is another `Model`) → query the posterior → sample. Events are built
//! with the fluent DSL (`var(..)`, `&`, `|`).
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl::prelude::*;

fn main() {
    // ---- modeling (Fig. 2a): source straight to a queryable session ----
    let model = Model::compile(
        r#"
Nationality ~ choice({'India': 0.5, 'USA': 0.5})
if (Nationality == 'India') {
    Perfect ~ bernoulli(p=0.10)
    if (Perfect == 1) { GPA ~ atomic(10) } else { GPA ~ uniform(0, 10) }
} else {
    Perfect ~ bernoulli(p=0.15)
    if (Perfect == 1) { GPA ~ atomic(4) } else { GPA ~ uniform(0, 4) }
}
"#,
    )
    .expect("the model is well-formed");

    // ---- prior queries (Fig. 2b) ----
    println!("== prior marginals ==");
    println!(
        "P[Nationality = USA]  = {:.4}",
        model.prob(&var("Nationality").eq("USA")).unwrap()
    );
    println!(
        "P[Perfect = 1]        = {:.4}",
        model.prob(&var("Perfect").eq(1.0)).unwrap()
    );
    println!("GPA CDF (note the atoms at 4 and 10):");
    for x in [2.0, 3.9999, 4.0, 8.0, 9.9999, 10.0] {
        println!(
            "  P[GPA <= {x:>7.4}] = {:.4}",
            model.prob(&var("GPA").le(x)).unwrap()
        );
    }

    // ---- a joint query (Fig. 2c) ----
    let joint = var("Perfect").eq(1.0) | (var("Nationality").eq("India") & var("GPA").gt(3.0));
    println!(
        "\nP[(Perfect = 1) or (India and GPA > 3)] = {:.4}",
        model.prob(&joint).unwrap()
    );

    // ---- conditioning (Fig. 2f): the posterior is a Model too ----
    let evidence = (var("Nationality").eq("USA") & var("GPA").gt(3.0))
        | var("GPA").in_interval(Interval::open(8.0, 10.0));
    let posterior = model.condition(&evidence).expect("positive probability");

    // ---- posterior queries (Fig. 2h) ----
    println!("\n== posterior marginals given ((USA and GPA > 3) or (8 < GPA < 10)) ==");
    println!(
        "P[Nationality = India | e] = {:.4}   (paper: 0.33)",
        posterior.prob(&var("Nationality").eq("India")).unwrap()
    );
    println!(
        "P[Perfect = 1 | e]         = {:.4}   (paper: 0.28)",
        posterior.prob(&var("Perfect").eq(1.0)).unwrap()
    );

    // ---- simulation ----
    let mut rng = StdRng::seed_from_u64(1);
    println!("\n== five posterior samples ==");
    for _ in 0..5 {
        let s = posterior.sample(&mut rng);
        println!(
            "  Nationality={:<6} Perfect={} GPA={:.3}",
            s.str(&Var::new("Nationality")).unwrap(),
            s.real(&Var::new("Perfect")).unwrap(),
            s.real(&Var::new("GPA")).unwrap()
        );
    }
}
