//! Serving-shaped inference: two independent sessions (each its own
//! [`Model`] with its own factory) answer wide query batches in parallel
//! over a thread pool, sharing one bounded cross-session LRU cache keyed
//! by the model's content digest. Conditioning returns posterior models
//! that inherit the cache automatically.
//!
//! Run with `cargo run --release --example parallel_serving`; set
//! `SPPL_THREADS` to pin the pool width.

use std::sync::Arc;
use std::time::Instant;

use sppl::models::hmm;
use sppl::prelude::*;

const N_STEP: usize = 30;

/// One "session": translate the model, attach the shared cache, and
/// condition on the observations — the posterior `Model` keeps the cache.
fn open_session(cache: &Arc<SharedCache>) -> Model {
    let model = hmm::hierarchical_hmm(N_STEP)
        .session()
        .expect("model compiles")
        .with_shared_cache(Arc::clone(cache));
    // Fixed synthetic observations so both sessions see the same model.
    let x: Vec<f64> = (0..N_STEP).map(|t| 5.0 + f64::from(t as u32 % 3)).collect();
    let y: Vec<f64> = (0..N_STEP).map(|t| f64::from(4 + (t as u32 % 4))).collect();
    model
        .constrain(&hmm::observation_assignment(&x, &y))
        .expect("positive density")
}

fn main() {
    let threads = default_threads();
    println!("pool: {threads} threads (set SPPL_THREADS to override)");

    let cache = Arc::new(SharedCache::new(10_000));
    let mut batch = hmm::smoothing_queries(N_STEP);
    batch.extend(hmm::pairwise_queries(N_STEP));
    println!("batch: {} posterior marginals per session\n", batch.len());

    // Session 1 pays for the evaluations and fills the shared cache.
    let session1 = open_session(&cache);
    let t = Instant::now();
    let answers1 = session1.par_logprob_many(&batch).expect("batch");
    println!(
        "session 1 (cold): {:5.1} ms  shared cache {:?}",
        t.elapsed().as_secs_f64() * 1000.0,
        cache.stats(),
    );

    // Session 2 compiles its own copy of the model; its digest matches,
    // so every query is served session 1's exact bits from the shared
    // cache without touching the evaluator.
    let session2 = open_session(&cache);
    assert_eq!(session1.model_digest(), session2.model_digest());
    let t = Instant::now();
    let answers2 = session2.par_logprob_many(&batch).expect("batch");
    println!(
        "session 2 (shared-cache warm): {:5.1} ms  shared cache {:?}",
        t.elapsed().as_secs_f64() * 1000.0,
        cache.stats(),
    );
    assert!(answers1
        .iter()
        .zip(&answers2)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
    println!(
        "\nboth sessions agree bit-for-bit on all {} answers",
        batch.len()
    );

    let s = cache.stats();
    println!(
        "shared cache: {} hits / {} misses / {} entries / {} evictions (hit rate {:.0}%)",
        s.hits,
        s.misses,
        s.entries,
        cache.evictions(),
        s.hit_rate() * 100.0,
    );
}
