//! The multi-stage Bayesian workflow of paper Fig. 7a, on the Clinical
//! Trial benchmark (which also demonstrates the Lst. 4 idiom: a continuous
//! response-rate prior discretized with `binspace` + `switch` to satisfy
//! restriction R4).
//!
//! The model is translated **once** into a [`Model`] session; each new
//! dataset is conditioned against the same prior (the posterior is
//! another `Model` over the same factory, so node-level memos stay warm
//! across datasets), and each posterior supports as many queries as
//! needed — the amortization that single-stage engines (like the paper's
//! PSI baseline) cannot exploit.
//!
//! Run with: `cargo run --release --example clinical_trial`

use sppl::models::psi_suite;
use sppl::prelude::*;

fn main() {
    let (n_treated, n_control) = (20, 20);

    // Stage S1: translate once.
    let start = std::time::Instant::now();
    let model = psi_suite::clinical_trial(n_treated, n_control)
        .session()
        .expect("model compiles");
    println!(
        "S1 translate: {:.1} ms ({} physical nodes)\n",
        start.elapsed().as_secs_f64() * 1000.0,
        physical_node_count(model.root())
    );

    // Stages S2+S3, repeated for several observed trials.
    let scenarios = [
        ("strong effect   (80% vs 30%)", 0.80, 0.30),
        ("moderate effect (60% vs 40%)", 0.60, 0.40),
        ("null effect     (50% vs 50%)", 0.50, 0.50),
        ("harmful         (30% vs 60%)", 0.30, 0.60),
    ];
    for (i, (label, p_treated, p_control)) in scenarios.iter().enumerate() {
        let data = psi_suite::clinical_trial_dataset(
            i as u64 + 1,
            n_treated,
            n_control,
            *p_treated,
            *p_control,
        );
        let t0 = std::time::Instant::now();
        let posterior = model.constrain(&data).expect("positive density");
        let cond_ms = t0.elapsed().as_secs_f64() * 1000.0;

        let t1 = std::time::Instant::now();
        let p_effective = posterior
            .prob(&psi_suite::clinical_trial_query())
            .expect("query");
        // The posterior is reusable: ask further questions for free.
        let p_high_control = posterior.prob(&var("ProbControl").gt(0.5)).expect("query");
        let query_ms = t1.elapsed().as_secs_f64() * 1000.0;

        println!("dataset {i}: {label}");
        println!(
            "  S2 condition {cond_ms:.1} ms | S3 queries {query_ms:.1} ms | \
             P[effective | data] = {p_effective:.3} | P[control rate > .5] = {p_high_control:.3}"
        );
    }
    println!(
        "\nThe prior expression was translated once and reused for {} datasets;",
        scenarios.len()
    );
    println!("a single-stage engine would re-derive everything per dataset (Fig. 7b).");
}
