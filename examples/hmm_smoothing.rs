//! Exact smoothing in the hierarchical hidden Markov model of paper
//! Sec. 2.2 / Fig. 3: simulate a 100-step trace, condition on the
//! observations, and print the exact posterior P[Z_t = 1 | x, y] next to
//! the true hidden states.
//!
//! Run with: `cargo run --release --example hmm_smoothing`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl::models::hmm;
use sppl::prelude::*;

fn main() {
    let n_step = 100;

    println!("translating the {n_step}-step hierarchical HMM…");
    let start = std::time::Instant::now();
    let model = hmm::hierarchical_hmm(n_step)
        .session()
        .expect("model compiles");
    let stats = graph_stats(model.root());
    println!(
        "  {:.2}s — {} physical nodes vs {:.3e} tree-expanded nodes \
         (compression {:.3e}x)",
        start.elapsed().as_secs_f64(),
        stats.physical_nodes,
        stats.tree_nodes,
        stats.compression_ratio()
    );

    // Simulate ground truth (Fig. 3b, top/middle panels).
    let mut rng = StdRng::seed_from_u64(20260609);
    let trace = hmm::simulate_trace(&mut rng, n_step);
    println!(
        "simulated trace: separated={} (regime means {})",
        trace.separated,
        if trace.separated == 1 {
            "well apart"
        } else {
            "close together"
        }
    );

    // Exact smoothing: condition on all observations at once. The
    // posterior comes back as another Model — same factory, warm caches,
    // ready for batched queries.
    let start = std::time::Instant::now();
    let posterior = model
        .constrain(&hmm::observation_assignment(&trace.x, &trace.y))
        .expect("observations have positive density");
    println!(
        "conditioning on 2×{n_step} observations: {:.2}s",
        start.elapsed().as_secs_f64()
    );

    // All smoothing marginals in one batched call through the posterior
    // session; a second pass is answered entirely from cache.
    let queries = hmm::smoothing_queries(n_step);
    let start = std::time::Instant::now();
    let series = posterior.prob_many(&queries).expect("smoothing queries");
    let cold = start.elapsed().as_secs_f64();
    let start = std::time::Instant::now();
    let warm_series = posterior.prob_many(&queries).expect("smoothing queries");
    let warm = start.elapsed().as_secs_f64();
    assert_eq!(series, warm_series, "warm pass must be bit-identical");

    let mut correct = 0;
    println!("\n  t  true Z  P[Z=1 | data]");
    for (t, p) in series.iter().enumerate() {
        let guess = u8::from(*p > 0.5);
        correct += usize::from(guess == trace.z[t]);
        if t % 10 == 0 {
            let bar: String = "#".repeat((p * 30.0).round() as usize);
            println!("{t:>3}     {}   {p:.3} {bar}", trace.z[t]);
        }
    }
    let stats = posterior.stats();
    println!(
        "\n{} smoothing queries: cold {:.2}s, warm {:.4}s \
         ({} hits / {} misses); MAP state matches truth at {}/{} steps",
        n_step, cold, warm, stats.hits, stats.misses, correct, n_step
    );
}
