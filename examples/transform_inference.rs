//! Exact inference on a stochastic many-to-one transformation (paper
//! Fig. 4 / Appx. C.3): a piecewise cubic/radical transform of a normal
//! variable, conditioned through the transform.
//!
//! Run with: `cargo run --example transform_inference`

use sppl::prelude::*;

fn main() {
    // Fig. 4a: X ~ Normal(0,2); Z = -X³+X²+6X if X < 1 else -5√X + 11.
    let model = Model::compile(
        "
X ~ normal(0, 2)
if (X < 1) { Z = -(X**3) + X**2 + 6*X }
else { Z = -5*sqrt(X) + 11 }
",
    )
    .expect("model compiles");

    println!("== prior ==");
    println!(
        "P[X < 1]  = {:.4}  (branch weight, paper: .69)",
        model.prob(&var("X").lt(1.0)).unwrap()
    );
    println!("P[Z <= 0] = {:.4}", model.prob(&var("Z").le(0.0)).unwrap());

    // Fig. 4c: condition on Z² ≤ 4 ∧ Z ≥ 0, i.e. Z ∈ [0, 2]. The
    // posterior is another Model over the same factory.
    let evidence = var("Z").pow_int(2).le(4.0) & var("Z").ge(0.0);
    let posterior = model.condition(&evidence).expect("positive probability");

    println!("\n== posterior given Z² <= 4 and Z >= 0 ==");
    // The three components of Fig. 4d: X ∈ [-2.17, -2] ∪ [0, 0.32] ∪ [3.24, 4.84].
    let components = [
        (
            "X in [-2.18, -2.0]",
            var("X").in_interval(Interval::closed(-2.18, -2.0)),
        ),
        (
            "X in [0.0, 0.33]",
            var("X").in_interval(Interval::closed(0.0, 0.33)),
        ),
        (
            "X in [3.24, 4.84]",
            var("X").in_interval(Interval::closed(3.24, 4.84)),
        ),
    ];
    let mut total = 0.0;
    for (name, e) in &components {
        let p = posterior.prob(e).unwrap();
        total += p;
        println!("P[{name} | e] = {p:.3}");
    }
    println!("total = {total:.6}  (the three preimage components partition the posterior)");
    println!("(paper Fig. 4d weights: .16 / .49 / .35)");

    // The closure property: the posterior answers further queries.
    println!(
        "\nP[Z > 1 | e] = {:.4}",
        posterior.prob(&var("Z").gt(1.0)).unwrap()
    );
}
