//! Fairness verification of decision-tree classifiers (paper Sec. 6.1,
//! Table 2): compute the Eq. (7) ratio exactly with SPPL and compare with
//! the two approximate baseline verifiers.
//!
//! Run with: `cargo run --release --example fairness_audit`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sppl::baseline::fairsquare::VolumeVerifier;
use sppl::baseline::verifair::AdaptiveSampler;
use sppl::models::fairness::{self, DecisionTree, Population};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    for tree in [DecisionTree::Dt4, DecisionTree::Dt14, DecisionTree::Dt16A] {
        for pop in [Population::Independent, Population::BayesNet1] {
            let task = fairness::task(tree, pop);
            let start = std::time::Instant::now();
            let model = task.model.session().expect("task compiles");
            let ratio = fairness::fairness_ratio(model.root()).expect("exact ratio");
            let sppl_s = start.elapsed().as_secs_f64();
            let verdict = if fairness::is_fair(ratio, task.epsilon) {
                "FAIR"
            } else {
                "UNFAIR"
            };

            let vf = AdaptiveSampler::default().verify(model.root(), &mut rng);
            let fs = VolumeVerifier::default()
                .verify(model.root(), &tree.spec())
                .expect("volume verifier");

            println!("{:<22} ({} LoC)", task.name, task.model.lines_of_code());
            println!("  SPPL exact:      ratio={ratio:.4}  {verdict}  in {sppl_s:.4}s");
            println!(
                "  VeriFair-style:  ratio={:.4}  {}  in {:.3}s ({} samples)",
                vf.ratio,
                if vf.fair { "FAIR" } else { "UNFAIR" },
                vf.seconds,
                vf.samples
            );
            println!(
                "  FairSquare-style: bounds=[{:.3}, {:.3}]  {}  in {:.3}s ({} boxes)",
                fs.ratio_bounds.0,
                fs.ratio_bounds.1,
                if fs.fair { "FAIR" } else { "UNFAIR" },
                fs.seconds,
                fs.boxes
            );
            println!();
        }
    }
}
